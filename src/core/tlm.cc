#include "core/tlm.h"

#include <algorithm>

#include "core/delta_layered.h"  // key_lead_slots
#include "crypto/oneway.h"

namespace mcc::core {

tlm_delta_sender::tlm_delta_sender(int session_id, const threshold_config& cfg,
                                   std::vector<sim::group_addr> groups,
                                   sim::time_ns slot_duration,
                                   std::uint64_t seed)
    : session_id_(session_id),
      cfg_(cfg),
      groups_(std::move(groups)),
      slot_duration_(slot_duration),
      rng_(seed) {
  util::require(static_cast<int>(groups_.size()) == cfg_.num_levels,
                "tlm_delta_sender: one group per level required");
  const auto n = static_cast<std::size_t>(cfg_.num_levels);
  offset_.assign(n + 2, 0);
  poly_.assign(n + 1, std::nullopt);
  k_.assign(n + 1, 1);
}

crypto::group_key tlm_delta_sender::nonce() {
  return crypto::mask_to_bits(crypto::group_key{rng_.next()}, cfg_.key_bits);
}

void tlm_delta_sender::begin_slot(std::int64_t slot, std::uint32_t auth_mask,
                                  const std::vector<int>& packets_per_group) {
  current_slot_ = slot;
  const int levels = cfg_.num_levels;

  // Group-major packet enumeration: packets of group j occupy indices
  // offset_[j]+1 .. offset_[j+1]; level g's packet set is exactly 1..n_g.
  offset_[1] = 0;
  for (int j = 1; j <= levels; ++j) {
    offset_[static_cast<std::size_t>(j + 1)] =
        offset_[static_cast<std::size_t>(j)] +
        packets_per_group[static_cast<std::size_t>(j)];
  }

  std::vector<crypto::group_key> keys(static_cast<std::size_t>(levels) + 1,
                                      crypto::zero_key);
  sigma_key_block block;
  block.session_id = session_id_;
  block.target_slot = slot + key_lead_slots;
  block.slot_duration = slot_duration_;
  block.key_bits = cfg_.key_bits;
  for (int g = 1; g <= levels; ++g) {
    const auto gi = static_cast<std::size_t>(g);
    const auto n_g = static_cast<int>(offset_[gi + 1]);
    k_[gi] = shares_required(cfg_.loss_threshold[gi], n_g);
    const crypto::group_key key = nonce();
    keys[gi] = key;
    poly_[gi].emplace(key.value % crypto::shamir_prime, k_[gi], rng_);
    // Tuple for group g: the level-g top key, plus — when the protocol
    // authorizes an upgrade to g — an increase key derived one-way from the
    // level below's key: holders of kappa_{g-1} compute it, nobody can
    // invert it back (the threshold analogue of iota_g = tau_{g-1}).
    key_tuple tuple{key, {}, {}};
    if (g >= 2 && (auth_mask & (1u << g))) {
      tuple.inc = crypto::mask_to_bits(
          crypto::group_key{crypto::oneway_mix(keys[gi - 1].value)},
          cfg_.key_bits);
    }
    block.entries.emplace_back(groups_[gi - 1], tuple);
  }
  keys_[block.target_slot] = std::move(keys);
  while (keys_.size() > 8) keys_.erase(keys_.begin());
  if (emitter_ != nullptr) emitter_->emit_block(block, slot);
}

void tlm_delta_sender::fill_fields(std::int64_t slot, int group,
                                   int seq_in_slot, bool, sim::flid_data& hdr) {
  util::require(slot == current_slot_,
                "tlm_delta_sender: packet outside current slot");
  const auto x = static_cast<std::uint64_t>(
      offset_[static_cast<std::size_t>(group)] + seq_in_slot + 1);
  // One share for every level this packet belongs to (levels group..N) —
  // the per-packet cost of threshold DELTA.
  std::vector<sim::level_share> shares;
  shares.reserve(static_cast<std::size_t>(cfg_.num_levels - group + 1));
  for (int g = group; g <= cfg_.num_levels; ++g) {
    const auto& poly = poly_[static_cast<std::size_t>(g)];
    shares.push_back(sim::level_share{g, x, poly->eval(x)});
  }
  hdr.level_shares = std::move(shares);
}

std::optional<crypto::group_key> tlm_delta_sender::key_for(
    std::int64_t target_slot, int level) const {
  auto it = keys_.find(target_slot);
  if (it == keys_.end()) return std::nullopt;
  if (level < 1 || level > cfg_.num_levels) return std::nullopt;
  return it->second[static_cast<std::size_t>(level)];
}

tlm_sender_bundle make_tlm_sender(sim::network& net, sim::node_id sender_host,
                                  flid::flid_sender& sender,
                                  const threshold_config& thresholds,
                                  std::uint64_t seed,
                                  const sigma_emitter_config& emitter_cfg) {
  const flid::flid_config& fc = sender.config();
  util::require(thresholds.num_levels == fc.num_groups,
                "make_tlm_sender: one threshold per group required");
  std::vector<sim::group_addr> groups;
  for (int g = 1; g <= fc.num_groups; ++g) groups.push_back(fc.group(g));

  tlm_sender_bundle out;
  out.delta = std::make_unique<tlm_delta_sender>(
      fc.session_id, thresholds, groups, fc.slot_duration, seed);
  out.emitter = std::make_unique<sigma_ctrl_emitter>(
      net, sender_host, groups, fc.slot_duration, thresholds.key_bits,
      emitter_cfg);
  out.delta->set_emitter(out.emitter.get());
  sender.set_delta_hook(out.delta.get());
  sender.set_sigma_tagging(true);
  sender.set_sigma_protected(true);
  return out;
}

// ---------------------------------------------------------------------------
// tlm_sigma_strategy
// ---------------------------------------------------------------------------

int tlm_sigma_strategy::on_slot(flid::flid_receiver& r,
                                const flid::slot_summary& s) {
  const flid::flid_config& cfg = r.config();
  const sim::time_ns t = cfg.slot_duration;

  bool any_packets = false;
  for (int g = 1; g <= cfg.num_groups; ++g) {
    if (s.groups[static_cast<std::size_t>(g)].received > 0) {
      any_packets = true;
      break;
    }
  }
  if (!any_packets) {
    ++empty_slots_;
    if (empty_slots_ >= 2 &&
        net_->sched().now() - last_session_join_ > 2 * t) {
      ++stats_.cutoffs;
      send_session_join();
      empty_slots_ = 0;
    }
    return r.level();
  }
  empty_slots_ = 0;
  if (s.level == 0) return r.level();

  // Collect shares per level across groups 1..level (and any probed group).
  std::map<int, std::vector<crypto::shamir_share>> by_level;
  for (int j = 1; j <= cfg.num_groups; ++j) {
    for (const auto& ls : s.groups[static_cast<std::size_t>(j)].shares) {
      by_level[ls.level].push_back(crypto::shamir_share{ls.x, ls.y});
    }
  }

  // Highest level with a reconstructible key. n_g (and so k_g) derives from
  // the advertised per-group packet counts; a group with no packets at all
  // caps reconstruction below it.
  std::vector<std::pair<sim::group_addr, crypto::group_key>> pairs;
  int entitled = 0;
  std::int64_t n_cum = 0;
  for (int g = 1; g <= std::min(r.level() + 1, cfg.num_groups); ++g) {
    const auto& rec = s.groups[static_cast<std::size_t>(g)];
    if (rec.expected < 0) break;  // unknown count: cannot size k_g
    n_cum += rec.expected;
    const int k = shares_required(
        cfg_.loss_threshold[static_cast<std::size_t>(g)],
        static_cast<int>(n_cum));
    const auto shares = by_level.find(g);
    if (shares == by_level.end() ||
        static_cast<int>(shares->second.size()) < k) {
      ++tlm_stats_.levels_denied_by_threshold;
      break;
    }
    const auto key = reconstruct_threshold_key(
        {shares->second.data(), shares->second.size()}, k);
    if (!key.has_value()) break;
    ++tlm_stats_.levels_reconstructed;
    pairs.emplace_back(cfg.group(g),
                       crypto::mask_to_bits(*key, cfg_.key_bits));
    entitled = g;
  }

  if (entitled == 0) {
    ++stats_.cutoffs;
    if (net_->sched().now() - last_session_join_ >= t) send_session_join();
    return r.level();
  }

  // Probe upward when the slot authorized an upgrade and we fully hold our
  // current level (RLM's join experiment): the increase key for level g+1 is
  // derived one-way from kappa_g, which we just reconstructed.
  int target = entitled;
  if (entitled >= r.level() && entitled < cfg.num_groups &&
      s.upgrade_authorized(entitled + 1)) {
    const crypto::group_key iota = crypto::mask_to_bits(
        crypto::group_key{crypto::oneway_mix(
            pairs.back().second.value)},
        cfg_.key_bits);
    pairs.emplace_back(cfg.group(entitled + 1), iota);
    target = entitled + 1;
  }
  send_subscribe(s.slot + key_lead_slots, pairs);
  if (!pairs.empty() && target < r.level() && entitled < r.level()) {
    std::vector<sim::group_addr> dropped;
    for (int g = target + 1; g <= r.level(); ++g) dropped.push_back(cfg.group(g));
    send_unsubscribe(dropped);
  }
  r.set_local_level(target);
  return target;
}

}  // namespace mcc::core
