#include "core/sigma_wire.h"

#include "util/require.h"

namespace mcc::core {

namespace {

class byte_writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void key(crypto::group_key k, int bits) {
    for (int i = 0; i < bits / 8; ++i) {
      u8(static_cast<std::uint8_t>(k.value >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class byte_reader {
 public:
  explicit byte_reader(std::span<const std::uint8_t> in) : in_(in) {}
  [[nodiscard]] bool ok() const { return ok_; }
  std::uint8_t u8() {
    if (pos_ >= in_.size()) {
      ok_ = false;
      return 0;
    }
    return in_[pos_++];
  }
  std::uint16_t u16() {
    const auto lo = u8();
    const auto hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  crypto::group_key key(int bits) {
    std::uint64_t v = 0;
    for (int i = 0; i < bits / 8; ++i) {
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    }
    return crypto::group_key{v};
  }

 private:
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

constexpr std::uint8_t flag_has_dec = 0x1;
constexpr std::uint8_t flag_has_inc = 0x2;

}  // namespace

std::vector<std::uint8_t> serialize(const sigma_key_block& b) {
  util::require(b.key_bits == 16 || b.key_bits == 32 || b.key_bits == 64,
                "sigma serialize: unsupported key width");
  byte_writer w;
  w.u32(static_cast<std::uint32_t>(b.session_id));
  w.u64(static_cast<std::uint64_t>(b.target_slot));
  w.u64(static_cast<std::uint64_t>(b.slot_duration));
  w.u8(static_cast<std::uint8_t>(b.key_bits));
  w.u16(static_cast<std::uint16_t>(b.entries.size()));
  for (const auto& [group, tuple] : b.entries) {
    w.u32(static_cast<std::uint32_t>(group.value));
    std::uint8_t flags = 0;
    if (tuple.dec.has_value()) flags |= flag_has_dec;
    if (tuple.inc.has_value()) flags |= flag_has_inc;
    w.u8(flags);
    w.key(tuple.top, b.key_bits);
    if (tuple.dec.has_value()) w.key(*tuple.dec, b.key_bits);
    if (tuple.inc.has_value()) w.key(*tuple.inc, b.key_bits);
  }
  return w.take();
}

std::optional<sigma_key_block> deserialize_key_block(
    std::span<const std::uint8_t> bytes) {
  byte_reader r(bytes);
  sigma_key_block b;
  b.session_id = static_cast<int>(r.u32());
  b.target_slot = static_cast<std::int64_t>(r.u64());
  b.slot_duration = static_cast<sim::time_ns>(r.u64());
  b.key_bits = r.u8();
  if (b.key_bits != 16 && b.key_bits != 32 && b.key_bits != 64) {
    return std::nullopt;
  }
  const int count = r.u16();
  for (int i = 0; i < count; ++i) {
    sim::group_addr g{static_cast<int>(r.u32())};
    const std::uint8_t flags = r.u8();
    key_tuple t;
    t.top = r.key(b.key_bits);
    if (flags & flag_has_dec) t.dec = r.key(b.key_bits);
    if (flags & flag_has_inc) t.inc = r.key(b.key_bits);
    if (!r.ok()) return std::nullopt;
    b.entries.emplace_back(g, t);
  }
  if (!r.ok()) return std::nullopt;
  return b;
}

sigma_key_block block_from_keys(const delta_slot_keys& keys,
                                const std::vector<sim::group_addr>& groups,
                                sim::time_ns slot_duration, int key_bits) {
  const int n = keys.num_groups();
  util::require(static_cast<int>(groups.size()) == n,
                "block_from_keys: group list size mismatch");
  sigma_key_block b;
  b.session_id = keys.session_id;
  b.target_slot = keys.target_slot;
  b.slot_duration = slot_duration;
  b.key_bits = key_bits;
  for (int g = 1; g <= n; ++g) {
    key_tuple t;
    t.top = keys.top[static_cast<std::size_t>(g)];
    if (g <= n - 1) t.dec = keys.decrease[static_cast<std::size_t>(g)];
    if (g >= 2) t.inc = keys.increase[static_cast<std::size_t>(g)];
    b.entries.emplace_back(groups[static_cast<std::size_t>(g - 1)], t);
  }
  return b;
}

}  // namespace mcc::core
