#include "core/overhead.h"

#include "util/require.h"

namespace mcc::core {

double delta_overhead(const overhead_params& p) {
  util::require(p.session_rate_bps > 0 && p.base_rate_bps > 0,
                "delta_overhead: rates must be positive");
  // (2P - p) * b / (R t) with P = R t / s and p = r t / s reduces to:
  const double m_pow = p.session_rate_bps / p.base_rate_bps;  // m^(N-1)
  return (2.0 - 1.0 / m_pow) * static_cast<double>(p.key_bits) /
         static_cast<double>(p.packet_data_bits);
}

double sigma_overhead(const overhead_params& p) {
  util::require(p.slot_seconds > 0, "sigma_overhead: slot must be positive");
  const double n = static_cast<double>(p.num_groups);
  const double b = static_cast<double>(p.key_bits);
  const double tuple_bits = static_cast<double>(p.slot_number_bits) +
                            32.0 * n +
                            b * (2.0 * n - 1.0 + p.sum_upgrade_freq);
  return (tuple_bits * p.fec_expansion + p.header_bits_per_slot) /
         (p.session_rate_bps * p.slot_seconds);
}

}  // namespace mcc::core
