// DELTA instantiation for cumulative layered multicast protocols that define
// congestion as a single packet loss (FLID-DL, RLC) — paper section 3.1.1,
// Figures 3 and 4.
//
// Per slot, each group g is guarded by up to three keys, any of which opens
// the group at the edge router:
//   top key       tau_g   = XOR of all component fields of groups 1..g
//   decrease key  delta_g = nonce carried in the decrease field of group g+1
//   increase key  iota_g  = tau_{g-1}, defined when the protocol authorizes
//                           an upgrade to group g this slot
// so that (1) only an uncongested receiver of g groups reconstructs tau_g,
// (2) a congested receiver of g groups obtains keys for its lower g-1 groups
// from decrease fields, and (3) an authorized uncongested receiver of g
// groups obtains the key for group g+1 from its own components.
//
// Keys harvested from slot-s packets control access during slot s+2
// (Figure 2); the sender precomputes keys at slot start and generates
// component fields in real time, so transmission patterns are unchanged.
#ifndef MCC_CORE_DELTA_LAYERED_H
#define MCC_CORE_DELTA_LAYERED_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "crypto/key.h"
#include "crypto/prng.h"
#include "flid/flid_receiver.h"
#include "flid/flid_sender.h"

namespace mcc::core {

/// How many future slots ahead keys distributed now become valid (Figure 2:
/// keys from slot s guard slot s + 2).
inline constexpr std::int64_t key_lead_slots = 2;

/// The key set guarding one future slot.
struct delta_slot_keys {
  int session_id = 0;
  std::int64_t target_slot = 0;
  std::vector<crypto::group_key> top;       // index 1..N
  std::vector<crypto::group_key> decrease;  // index 1..N-1 meaningful
  std::vector<std::optional<crypto::group_key>> increase;  // index 2..N
  [[nodiscard]] int num_groups() const {
    return static_cast<int>(top.size()) - 1;
  }
};

/// Sender side: plugs into flid_sender (or replicated_sender) as the
/// delta_sender_hook and emits per-slot key sets to SIGMA via a callback.
class delta_layered_sender : public flid::delta_sender_hook {
 public:
  delta_layered_sender(int session_id, int num_groups, int key_bits,
                       std::uint64_t seed);

  using keys_callback =
      std::function<void(const delta_slot_keys&, std::int64_t current_slot)>;
  /// SIGMA's control-packet emitter registers here; called once per slot.
  void set_keys_callback(keys_callback cb) { on_keys_ = std::move(cb); }

  void begin_slot(std::int64_t slot, std::uint32_t auth_mask,
                  const std::vector<int>& packets_per_group) override;
  void fill_fields(std::int64_t slot, int group, int seq_in_slot,
                   bool last_in_slot, sim::flid_data& hdr) override;

  /// Keys valid for access during `target_slot` (retained for a small
  /// window; used by SIGMA tests and the router in unit tests).
  [[nodiscard]] const delta_slot_keys* keys_for(std::int64_t target_slot) const;

  [[nodiscard]] int key_bits() const { return key_bits_; }

 private:
  [[nodiscard]] crypto::group_key nonce();

  int session_id_;
  int num_groups_;
  int key_bits_;
  crypto::prng rng_;
  keys_callback on_keys_;

  std::int64_t current_slot_ = -1;
  // Running XOR accumulators C_g for the current slot (Figure 4 real-time
  // phase); index 1..N.
  std::vector<crypto::group_key> acc_;
  // Decrease field value d_g for the current slot; index 2..N.
  std::vector<crypto::group_key> decrease_field_;
  std::map<std::int64_t, delta_slot_keys> recent_;  // by target slot
};

/// Result of the receiver algorithm of Figure 4 for one slot.
struct delta_reconstruction {
  /// Next top group n (0 = no keys reconstructible; the receiver must
  /// re-enter through SIGMA's session-join).
  int next_level = 0;
  /// (group index, key) pairs the receiver can prove for groups 1..n.
  std::vector<std::pair<int, crypto::group_key>> keys;
  /// Congested, but group `level` retained via its increase key (the
  /// contradiction resolution of section 3.1.1).
  bool retained_via_increase = false;
};

/// Receiver side: a pure function of the per-slot reception records kept by
/// flid_receiver.
class delta_layered_receiver {
 public:
  explicit delta_layered_receiver(int num_groups) : num_groups_(num_groups) {}

  [[nodiscard]] delta_reconstruction reconstruct(
      const flid::slot_summary& s) const;

 private:
  int num_groups_;
};

}  // namespace mcc::core

#endif  // MCC_CORE_DELTA_LAYERED_H
