// SIGMA edge-router agent (paper section 3.2): key-based group access
// control that is independent of the protected congestion control protocol.
//
// The agent plays three roles on its router:
//   * router-alert interceptor: collects FEC shards of address-key tuple
//     blocks from special packets and decodes them into the key store;
//   * management endpoint: handles session-join / subscription /
//     unsubscription messages from local receivers (Figure 6), validating
//     submitted keys against the store and (un)grafting the multicast tree;
//   * access policy: per-packet enforcement on host-facing interfaces — a
//     data packet tagged with slot x is forwarded iff the interface holds an
//     authorization for slot >= x or a grace window applies (two complete
//     slots after a newly added group's packets arrive, same for keyless
//     session-join admission).
//
// Enforcement reads only the protocol-independent shim tag (session, slot)
// and SIGMA's own messages — never the congestion-control headers
// (Requirement 3). The optional ECN mode scrubs component fields of marked
// packets (section 3.1.2), and the optional collusion countermeasure
// perturbs forwarded components per interface (section 4.2).
#ifndef MCC_CORE_SIGMA_ROUTER_H
#define MCC_CORE_SIGMA_ROUTER_H

#include <cstdint>
#include <map>
#include <vector>

#include "core/sigma_wire.h"
#include "crypto/rs_code.h"
#include "mcast/igmp.h"
#include "obs/trace.h"
#include "sim/network.h"

namespace mcc::core {

class sigma_router_agent : public sim::agent, public sim::access_policy {
 public:
  /// Attaches to `router` as agent, alert interceptor and access policy.
  /// `tree` is the router's IGMP agent, reused for graft/prune mechanics.
  sigma_router_agent(sim::network& net, sim::node_id router,
                     mcast::igmp_agent& tree);

  bool handle_packet(const sim::packet& p, sim::link* arrival) override;
  bool allow(sim::packet& p, sim::link* oif) override;

  /// DELTA ECN variant: invalidate component fields of ECN-marked packets
  /// before they reach receivers.
  void set_ecn_scrub(bool on) { ecn_scrub_ = on; }
  /// Collusion countermeasure of section 4.2 (interface-specific key
  /// perturbation). Off by default; switched per scenario via
  /// exp::testbed_config::interface_keying, which also flips every SIGMA
  /// receiver strategy to submit perturbed keys.
  void set_interface_keying(bool on) { interface_keying_ = on; }
  [[nodiscard]] bool interface_keying() const { return interface_keying_; }
  /// Probation memory (countermeasure to adaptive_churn's grace riding):
  /// remember a wiped interface×group's outstanding debt — pending probation,
  /// active cutoff, keyless-rejoin count — for `slots` slots past the point
  /// the debt would have been served. A session-join or subscribe within the
  /// window inherits the debt: no fresh grace window, a still-active cutoff
  /// refuses admission outright, and repeated keyless rejoins escalate the
  /// cutoff length geometrically. 0 (default) disables the memory and keeps
  /// the legacy wipe-on-unsubscribe behaviour bit-for-bit.
  void set_probation_memory(int slots) { probation_memory_slots_ = slots; }
  [[nodiscard]] int probation_memory() const { return probation_memory_slots_; }

  struct counters {
    std::uint64_t ctrl_shards = 0;
    std::uint64_t blocks_decoded = 0;
    std::uint64_t subscribe_msgs = 0;
    std::uint64_t valid_keys = 0;
    std::uint64_t invalid_keys = 0;
    std::uint64_t session_joins = 0;
    std::uint64_t session_joins_refused = 0;
    std::uint64_t unsubscribes = 0;
    std::uint64_t grace_forwards = 0;
    std::uint64_t authorized_forwards = 0;
    std::uint64_t denied = 0;
    std::uint64_t probation_blocks = 0;
    std::uint64_t stale_prunes = 0;
    std::uint64_t pending_subscriptions = 0;
    // Probation-memory counters (all zero while the memory is disabled).
    std::uint64_t memory_records = 0;   // debts remembered at unsubscribe
    std::uint64_t memory_inherits = 0;  // rejoins that inherited a debt
    std::uint64_t memory_refusals = 0;  // joins refused on a remembered block
    std::uint64_t blocked_grants = 0;   // valid keys refused mid-cutoff
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

  /// Invalid keys submitted on an interface within the retained slot window
  /// (the last `history_slots` slots) — the guessing-attack tally of paper
  /// section 4.2. Windowed, unlike the cumulative `invalid_keys` counter, so
  /// long churny runs do not accumulate stale penalty weight.
  [[nodiscard]] std::uint64_t guess_tally(sim::link* iface) const;

 private:
  struct shard_buffer {
    int data_shards = 0;
    std::size_t payload_size = 0;
    std::vector<crypto::indexed_shard> received;
    bool decoded = false;
  };

  struct session_state {
    sim::time_ns slot_duration = 0;
    std::int64_t max_seen_slot = -1;
    std::map<std::int64_t, std::map<int, key_tuple>> keys_by_slot;
    std::map<std::int64_t, shard_buffer> shards;
  };

  struct iface_group_state {
    std::int64_t authorized_until = -1;
    std::int64_t grace_through_slot = -1;
    bool awaiting_first_packet = false;
    /// Admitted keylessly (session-join); must prove a key before the grace
    /// window closes or be cut off for at least one slot.
    bool probation = false;
    /// Cutoff deadline in absolute time (a pruned branch stops delivering
    /// packets, so slot numbers would freeze; wall-clock keeps the ">= one
    /// time slot" cutoff of section 3.2.2 well-defined).
    sim::time_ns blocked_until = -1;
    /// Probation cutoffs served without ever proving a key. Only maintained
    /// under probation memory; drives the geometric cutoff escalation and is
    /// reset by a valid key.
    int keyless_rejoins = 0;
    bool grafted = false;
  };

  /// Outstanding debt of a wiped interface×group, retained for
  /// `probation_memory_slots_` slots past the point it would have been
  /// served.
  struct probation_memory_record {
    sim::time_ns blocked_until = -1;  // cutoff the wipe tried to skip
    int keyless_rejoins = 0;          // escalation ladder position
    sim::time_ns expires_at = 0;      // lazy-GC deadline
  };

  struct pending_subscription {
    sim::link* iface;
    int group_value;
    crypto::group_key key;
  };

  void on_ctrl(const sim::sigma_ctrl& hdr);
  void on_subscribe(const sim::sigma_subscribe& msg, sim::link* iface,
                    sim::node_id from);
  void on_unsubscribe(const sim::sigma_unsubscribe& msg, sim::link* iface);
  void on_session_join(const sim::sigma_session_join& msg, sim::link* iface);
  void try_decode(int session_id, std::int64_t target_slot);
  void grant(int session_id, sim::link* iface, int group_value,
             std::int64_t slot);
  void ungraft(int group_value, sim::link* iface, iface_group_state& st);
  /// Record the group's outstanding debt before the state is wiped (no-op
  /// when there is none, or when probation memory is off).
  void remember_debt(sim::link* iface, int group_value,
                     const iface_group_state& st, int session_id);
  /// Look up a remembered debt, lazily GCing expired records on the way.
  [[nodiscard]] probation_memory_record* recall_debt(sim::link* iface,
                                                     int group_value);
  void forget_debt(sim::link* iface, int group_value);
  /// Count an invalid key against the interface's windowed guessing tally.
  void tally_guess(sim::link* iface, std::int64_t slot);
  /// Trace-sink append for one enforcement milestone on an interface's
  /// track ("sigma:<router>:<host>"); a dead branch when tracing is off.
  void trace(obs::trace_event kind, sim::link* iface, std::uint64_t a = 0,
             std::uint64_t b = 0);
  [[nodiscard]] const key_tuple* tuple_for(int session_id, std::int64_t slot,
                                           int group_value) const;
  /// The one key comparison both validation paths (direct and
  /// pending-revalidation) share: raw tuple match, or the per-interface
  /// perturbed image under keying.
  [[nodiscard]] bool tuple_matches(const key_tuple& tuple,
                                   const crypto::group_key& submitted,
                                   sim::link* iface) const;

  sim::network& net_;
  sim::node_id router_;
  mcast::igmp_agent& tree_;
  bool ecn_scrub_ = false;
  bool interface_keying_ = false;
  int probation_memory_slots_ = 0;
  std::map<int, session_state> sessions_;
  std::map<sim::link*, std::map<int, iface_group_state>> ifaces_;
  // Wiped interface×group debts awaiting inheritance or expiry.
  std::map<sim::link*, std::map<int, probation_memory_record>> memory_;
  // (session, slot) -> subscriptions waiting for their tuple block.
  std::map<std::pair<int, std::int64_t>, std::vector<pending_subscription>>
      pending_;
  // Guessing-attack tallies: invalid keys per interface, bucketed by slot so
  // stale buckets decay out of the window instead of accumulating forever.
  std::map<sim::link*, std::map<std::int64_t, std::uint64_t>> guess_tally_;
  counters stats_;
  /// Event-trace sink captured at construction; per-interface track ids are
  /// interned lazily (interfaces appear as hosts attach).
  obs::trace_buffer* trace_ = nullptr;
  std::map<sim::link*, std::uint32_t> trace_tracks_;
};

}  // namespace mcc::core

#endif  // MCC_CORE_SIGMA_ROUTER_H
