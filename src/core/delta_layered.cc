#include "core/delta_layered.h"

#include "util/require.h"

namespace mcc::core {

delta_layered_sender::delta_layered_sender(int session_id, int num_groups,
                                           int key_bits, std::uint64_t seed)
    : session_id_(session_id),
      num_groups_(num_groups),
      key_bits_(key_bits),
      rng_(seed) {
  util::require(num_groups_ >= 1, "delta_layered_sender: need >= 1 group");
  util::require(key_bits_ == 16 || key_bits_ == 32 || key_bits_ == 64,
                "delta_layered_sender: key_bits must be 16, 32, or 64");
  acc_.assign(static_cast<std::size_t>(num_groups_) + 1, crypto::zero_key);
  decrease_field_.assign(static_cast<std::size_t>(num_groups_) + 1,
                         crypto::zero_key);
}

crypto::group_key delta_layered_sender::nonce() {
  return crypto::mask_to_bits(crypto::group_key{rng_.next()}, key_bits_);
}

void delta_layered_sender::begin_slot(std::int64_t slot,
                                      std::uint32_t auth_mask,
                                      const std::vector<int>&) {
  current_slot_ = slot;
  const auto n = static_cast<std::size_t>(num_groups_);

  // Precomputation phase of Figure 4.
  delta_slot_keys keys;
  keys.session_id = session_id_;
  keys.target_slot = slot + key_lead_slots;
  keys.top.assign(n + 1, crypto::zero_key);
  keys.decrease.assign(n + 1, crypto::zero_key);
  keys.increase.assign(n + 1, std::nullopt);

  // C_g <- nonce; tau_1 = C_1; tau_g = tau_{g-1} XOR C_g.
  for (std::size_t g = 1; g <= n; ++g) acc_[g] = nonce();
  keys.top[1] = acc_[1];
  for (std::size_t g = 2; g <= n; ++g) keys.top[g] = keys.top[g - 1] ^ acc_[g];

  // delta_{g-1} <- nonce; d_g <- delta_{g-1}   (carried by group g packets).
  for (std::size_t g = 2; g <= n; ++g) {
    keys.decrease[g - 1] = nonce();
    decrease_field_[g] = keys.decrease[g - 1];
  }

  // iota_g <- tau_{g-1} when the protocol authorizes an upgrade to g.
  for (std::size_t g = 2; g <= n; ++g) {
    if (auth_mask & (1u << g)) keys.increase[g] = keys.top[g - 1];
  }

  recent_[keys.target_slot] = keys;
  while (recent_.size() > 8) recent_.erase(recent_.begin());
  if (on_keys_) on_keys_(recent_[keys.target_slot], slot);
}

void delta_layered_sender::fill_fields(std::int64_t slot, int group, int,
                                       bool last_in_slot,
                                       sim::flid_data& hdr) {
  util::require(slot == current_slot_,
                "delta_layered_sender: packet outside current slot");
  const auto g = static_cast<std::size_t>(group);
  // Real-time phase of Figure 4: fresh nonce per packet, folded into C_g;
  // the last packet carries the accumulator so the XOR of all component
  // fields of the slot equals the precomputed C_g.
  if (!last_in_slot) {
    const crypto::group_key c = nonce();
    acc_[g] ^= c;
    hdr.component = c;
  } else {
    hdr.component = acc_[g];
  }
  if (group >= 2) hdr.decrease = decrease_field_[g];
}

const delta_slot_keys* delta_layered_sender::keys_for(
    std::int64_t target_slot) const {
  auto it = recent_.find(target_slot);
  return it == recent_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Receiver (Figure 4, right column)
// ---------------------------------------------------------------------------

delta_reconstruction delta_layered_receiver::reconstruct(
    const flid::slot_summary& s) const {
  delta_reconstruction out;
  const int level = s.level;
  if (level == 0) return out;  // nothing received over a full slot

  const auto rec = [&](int g) -> const flid::group_slot_record& {
    return s.groups[static_cast<std::size_t>(g)];
  };

  // u_{j-1} <- decrease field from R_j (available with >= 1 packet of group j).
  std::vector<std::optional<crypto::group_key>> u(
      static_cast<std::size_t>(num_groups_) + 2, std::nullopt);
  for (int j = 2; j <= level; ++j) {
    if (rec(j).received > 0 && rec(j).decrease.has_value()) {
      u[static_cast<std::size_t>(j - 1)] = rec(j).decrease;
    }
  }

  const auto complete_prefix = [&](int upto) {
    for (int g = 1; g <= upto; ++g) {
      if (!rec(g).complete()) return false;
    }
    return true;
  };
  // XOR of all component fields of groups 1..upto (Equation 3 / 5).
  const auto xor_components = [&](int upto) {
    crypto::group_key k = crypto::zero_key;
    for (int g = 1; g <= upto; ++g) k ^= rec(g).xor_components;
    return k;
  };

  if (!s.congested) {
    // Uncongested: tau_level from own components; lower groups via decrease
    // keys (all present because reception was loss-free).
    const crypto::group_key tau = xor_components(level);
    for (int j = 1; j <= level - 1; ++j) {
      out.keys.emplace_back(j, *u[static_cast<std::size_t>(j)]);
    }
    out.keys.emplace_back(level, tau);
    if (level < num_groups_ && s.upgrade_authorized(level + 1)) {
      // iota_{level+1} = tau_level: reuse the top key for the next group.
      out.keys.emplace_back(level + 1, tau);
      out.next_level = level + 1;
    } else {
      out.next_level = level;
    }
    return out;
  }

  // Congested. Contradiction resolution of section 3.1.1: if the only losses
  // are in group `level`, and the protocol authorizes an upgrade *to* level,
  // the receiver may retain level via iota_level = tau_{level-1} (which is
  // simultaneously the top key of group level-1).
  if (level >= 2 && s.upgrade_authorized(level) && complete_prefix(level - 1)) {
    const crypto::group_key tau_below = xor_components(level - 1);
    for (int j = 1; j <= level - 2; ++j) {
      out.keys.emplace_back(j, *u[static_cast<std::size_t>(j)]);
    }
    out.keys.emplace_back(level - 1, tau_below);  // tau_{level-1}
    out.keys.emplace_back(level, tau_below);      // iota_level, same value
    out.next_level = level;
    out.retained_via_increase = true;
    return out;
  }

  // Plain decrease: keys delta_1..delta_{level-1} from decrease fields; a
  // group that lost all its packets breaks the chain and forces a deeper
  // reduction (section 3.1.1).
  int n = 0;
  for (int j = 1; j <= level - 1; ++j) {
    if (!u[static_cast<std::size_t>(j)].has_value()) break;
    n = j;
  }
  out.next_level = n;
  for (int j = 1; j <= n; ++j) {
    out.keys.emplace_back(j, *u[static_cast<std::size_t>(j)]);
  }
  return out;
}

}  // namespace mcc::core
