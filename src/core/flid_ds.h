// FLID-DS: FLID-DL integrated with DELTA and SIGMA (paper section 5.1).
//
// Sender side: flid_sender + delta_layered_sender (in-band key material) +
// sigma_ctrl_emitter (key tuples to edge routers), with SIGMA shim tags on
// data packets and 250 ms slots (half of FLID-DL's 500 ms so the two-slot
// SIGMA enforcement granularity matches FLID-DL's control granularity).
//
// Receiver side: subscription strategies for flid_receiver that reconstruct
// keys per Figure 4 and manage membership through SIGMA messages — an honest
// strategy, and misbehaving strategies used in the Figure 7 experiments.
#ifndef MCC_CORE_FLID_DS_H
#define MCC_CORE_FLID_DS_H

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/delta_layered.h"
#include "core/sigma_emitter.h"
#include "crypto/prng.h"
#include "flid/flid_receiver.h"
#include "flid/flid_sender.h"
#include "obs/trace.h"

namespace mcc::core {

/// Everything the sender host runs for a FLID-DS session besides the FLID
/// sender itself. Keep alive for the lifetime of the session.
struct flid_ds_sender {
  std::unique_ptr<delta_layered_sender> delta;
  std::unique_ptr<sigma_ctrl_emitter> emitter;
};

/// Wires DELTA + SIGMA onto a flid_sender (must be called before start()).
[[nodiscard]] flid_ds_sender make_flid_ds_sender(
    sim::network& net, sim::node_id sender_host, flid::flid_sender& sender,
    std::uint64_t seed, const sigma_emitter_config& emitter_cfg = {});

/// Closed-loop feedback record computed once per evaluated slot: what the
/// receiver claimed going into the slot versus what the network actually
/// granted. Honest strategies ignore it; measurement-driven (adaptive)
/// adversaries key their schedules off it — the granted prefix is the only
/// signal through which a receiver can observe SIGMA's enforcement lag.
struct slot_feedback {
  std::int64_t slot = 0;
  sim::time_ns now = 0;
  /// Local subscription level entering the slot (what the receiver wanted).
  int claimed = 0;
  /// Contiguous group prefix that actually delivered packets this slot
  /// (what the edge router granted); 0 = fully cut off.
  int granted = 0;
};

/// Honest FLID-DS receiver strategy: per evaluated slot, reconstruct keys
/// (Figure 4), subscribe for slot s+2 with the address-key pairs, leave
/// dropped groups explicitly, and re-enter through session-join when cut off
/// at the minimal level.
class honest_sigma_strategy : public flid::subscription_strategy,
                              public sim::agent {
 public:
  honest_sigma_strategy() = default;
  ~honest_sigma_strategy() override;

  void session_start(flid::flid_receiver& r) override;
  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override;
  bool handle_packet(const sim::packet& p, sim::link* arrival) override;

  /// Collusion countermeasure mode: perturb reconstructed keys with the
  /// receiving host id before submission (must match the router setting).
  void set_interface_keying(bool on) { interface_keying_ = on; }
  [[nodiscard]] bool interface_keying() const { return interface_keying_; }

  struct counters {
    std::uint64_t subscribes = 0;
    std::uint64_t unsubscribes = 0;
    std::uint64_t session_joins = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t cutoffs = 0;  // congested at level 1, keys lost
    /// Evaluated slots in which nothing at all was delivered — the "slots
    /// spent cut off" term of the attacker cost accounting. Honest receivers
    /// accrue these only during blackouts/joins; attackers accrue them while
    /// serving the router's probation and stale-prune cutoffs.
    std::uint64_t cutoff_slots = 0;
    /// Wire bytes of every control message sent (subscribes, unsubscribes,
    /// session-joins, retransmissions included). Key-stuffed subscribes pay
    /// per pair, so a guessing flood is far more expensive per message than
    /// a sparse replay — the byte-priced cost model of attacker_cost.
    std::uint64_t ctrl_bytes = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

 protected:
  /// Shared mechanics for subclasses (the misbehaving strategy reuses the
  /// honest machinery but lies about its subscription decisions).
  void attach(flid::flid_receiver& r);
  /// Computes the slot's closed-loop feedback (claimed vs granted levels),
  /// fires on_feedback, and returns the record. Every on_slot path — honest,
  /// misbehaving, and the adaptive subclasses' own overrides — calls this
  /// exactly once per evaluated slot, so adaptive adversaries observe the
  /// network no matter which action path runs afterwards.
  slot_feedback observe_slot(flid::flid_receiver& r,
                             const flid::slot_summary& s);
  /// Feedback hook on the strategy interface: sees every slot_feedback
  /// record. The default does nothing; measurement-driven adversaries
  /// (adversary::adaptive_pulse / adaptive_churn) tune their schedules here.
  virtual void on_feedback(const slot_feedback& fb) { (void)fb; }
  /// Key-report hook: observes every DELTA reconstruction result (keys
  /// proving `subscribe_slot`) before submission. Adversary strategies that
  /// pool or leak keys (collusion) tap in here; the default does nothing.
  virtual void on_keys_reconstructed(
      std::int64_t subscribe_slot,
      const std::vector<std::pair<int, crypto::group_key>>& keys) {
    (void)subscribe_slot;
    (void)keys;
  }
  void send_subscribe(
      std::int64_t slot,
      const std::vector<std::pair<sim::group_addr, crypto::group_key>>& pairs);
  void send_unsubscribe(const std::vector<sim::group_addr>& groups);
  void send_session_join();
  /// The honest per-slot action; returns the new level.
  int honest_action(flid::flid_receiver& r, const flid::slot_summary& s);
  [[nodiscard]] crypto::group_key maybe_perturb(crypto::group_key k) const;

  sim::network* net_ = nullptr;
  flid::flid_receiver* receiver_ = nullptr;
  std::unique_ptr<delta_layered_receiver> delta_;
  bool interface_keying_ = false;
  std::uint64_t next_msg_id_ = 1;
  sim::time_ns last_session_join_ = -1;
  std::int64_t empty_slots_ = 0;
  /// Event-trace sink + this receiver's track, captured in attach(); null
  /// unless the world was built inside an obs::trace_scope.
  obs::trace_buffer* trace_ = nullptr;
  std::uint32_t trace_track_ = 0;

  struct pending_msg {
    sim::packet pkt;
    int retries_left = 2;
    sim::event_handle timer;
  };
  std::map<std::uint64_t, pending_msg> pending_;
  /// Liveness token for scheduled lambdas (retransmits, deferred rejoins).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  counters stats_;

 private:
  void arm_retransmit(std::uint64_t msg_id);
};

/// Misbehaving FLID-DS receiver: honest until `inflate_at`, then claims the
/// maximal subscription level regardless of congestion. For groups it cannot
/// prove keys for, it optionally replays stale keys or floods random guesses
/// (section 4.2's guessing attack). DELTA/SIGMA confine it to the
/// subscription its congestion state entitles it to (Figure 7).
class misbehaving_sigma_strategy : public honest_sigma_strategy {
 public:
  enum class key_mode {
    best_effort,  // submit only honestly reconstructible keys
    replay,       // add stale keys remembered from earlier slots
    guess,        // add random keys for unproven groups
  };

  misbehaving_sigma_strategy(sim::time_ns inflate_at, key_mode mode,
                             std::uint64_t seed, int guesses_per_group = 8);

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override;

  struct attack_counters {
    std::uint64_t guessed_keys = 0;
    std::uint64_t replayed_keys = 0;
    std::uint64_t attack_slots = 0;
  };
  [[nodiscard]] const attack_counters& attack_stats() const {
    return attack_stats_;
  }

 protected:
  /// Whether the attack is live right now. The base checks `inflate_at`;
  /// pulse-style subclasses overlay their own on/off schedule. Slots where
  /// this is false run the honest machinery (which re-proves keys, so the
  /// next active phase starts from a clean entitlement).
  [[nodiscard]] virtual bool attack_active() const;
  /// One attacking slot: claim everything locally, submit every key that
  /// might stick. Shared by subclasses that gate the attack differently.
  int attack_action(flid::flid_receiver& r, const flid::slot_summary& s);
  /// Out-of-band keys for a group beyond the provable prefix (the collusion
  /// pool). Appending a pair and returning true suppresses replay/guessing
  /// for that group; the default has no side channel.
  virtual bool sidechannel_keys(
      int group, std::int64_t subscribe_slot, const flid::flid_config& cfg,
      std::vector<std::pair<sim::group_addr, crypto::group_key>>& pairs) {
    (void)group;
    (void)subscribe_slot;
    (void)cfg;
    (void)pairs;
    return false;
  }
  [[nodiscard]] sim::time_ns inflate_at() const { return inflate_at_; }

 private:
  sim::time_ns inflate_at_;
  key_mode mode_;
  crypto::prng rng_;
  int guesses_per_group_;
  // Last key successfully reconstructed per group (for replay).
  std::map<int, crypto::group_key> stale_keys_;
  attack_counters attack_stats_;
};

}  // namespace mcc::core

#endif  // MCC_CORE_FLID_DS_H
