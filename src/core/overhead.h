// Closed-form communication-overhead model of paper section 5.4.
//
// DELTA adds a b-bit component field to every packet and a b-bit decrease
// field to packets of groups 2..N:
//     O_Delta = (2 - 1/m^(N-1)) * b / s        with m^(N-1) = R / r.
//
// SIGMA's special packets carry, per time slot, an l-bit slot number and one
// address-key tuple per group (32-bit address, b-bit top key, b-bit decrease
// key for groups 1..N-1, b-bit increase key with frequency f_g), expanded by
// the FEC factor z, plus h header bits:
//     O_Sigma = ((l + 32 N + b (2N - 1 + sum_g f_g)) z + h) / (r t m^(N-1)).
#ifndef MCC_CORE_OVERHEAD_H
#define MCC_CORE_OVERHEAD_H

namespace mcc::core {

struct overhead_params {
  int num_groups = 10;           // N
  double base_rate_bps = 100e3;  // r  (minimal group rate)
  double session_rate_bps = 4e6; // R  (cumulative rate; R/r = m^(N-1))
  int packet_data_bits = 4000;   // s  (500-byte data payload)
  int key_bits = 16;             // b
  int slot_number_bits = 8;      // l
  double slot_seconds = 0.25;    // t
  double fec_expansion = 2.0;    // z  (overcomes 50% loss)
  double header_bits_per_slot = 0.0;  // h (total special-packet headers)
  double sum_upgrade_freq = 0.0;      // sum over g = 2..N of f_g
};

/// Ratio of DELTA field bits to data bits.
[[nodiscard]] double delta_overhead(const overhead_params& p);

/// Ratio of SIGMA special-packet bits to data bits.
[[nodiscard]] double sigma_overhead(const overhead_params& p);

}  // namespace mcc::core

#endif  // MCC_CORE_OVERHEAD_H
