#include "core/delta_threshold.h"

#include <cmath>

#include "core/delta_layered.h"  // key_lead_slots
#include "util/require.h"

namespace mcc::core {

threshold_config threshold_config::uniform(int levels, double threshold,
                                           int key_bits) {
  threshold_config cfg;
  cfg.num_levels = levels;
  cfg.key_bits = key_bits;
  cfg.loss_threshold.assign(static_cast<std::size_t>(levels) + 1, threshold);
  return cfg;
}

threshold_config threshold_config::decaying(int levels, double base,
                                            double decay, int key_bits) {
  threshold_config cfg;
  cfg.num_levels = levels;
  cfg.key_bits = key_bits;
  cfg.loss_threshold.assign(static_cast<std::size_t>(levels) + 1, 0.0);
  for (int g = 1; g <= levels; ++g) {
    cfg.loss_threshold[static_cast<std::size_t>(g)] =
        base * std::pow(decay, g - 1);
  }
  return cfg;
}

int shares_required(double loss_threshold, int packets_in_slot) {
  util::require(packets_in_slot >= 1, "shares_required: empty slot");
  util::require(loss_threshold >= 0.0 && loss_threshold < 1.0,
                "shares_required: threshold must be in [0, 1)");
  const int k = static_cast<int>(
      std::ceil((1.0 - loss_threshold) * packets_in_slot));
  return std::min(std::max(k, 1), packets_in_slot);
}

delta_threshold_sender::delta_threshold_sender(const threshold_config& cfg,
                                               std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  util::require(cfg_.num_levels >= 1, "delta_threshold_sender: no levels");
  util::require(
      cfg_.loss_threshold.size() ==
          static_cast<std::size_t>(cfg_.num_levels) + 1,
      "delta_threshold_sender: threshold vector must have num_levels+1 slots");
  shares_.assign(static_cast<std::size_t>(cfg_.num_levels) + 1, {});
  thresholds_k_.assign(static_cast<std::size_t>(cfg_.num_levels) + 1, 1);
}

void delta_threshold_sender::begin_slot(
    std::int64_t slot, const std::vector<int>& packets_per_level) {
  util::require(packets_per_level.size() >
                    static_cast<std::size_t>(cfg_.num_levels),
                "delta_threshold_sender: packet count vector too short");
  current_slot_ = slot;
  std::vector<crypto::group_key> keys(
      static_cast<std::size_t>(cfg_.num_levels) + 1, crypto::zero_key);
  for (int level = 1; level <= cfg_.num_levels; ++level) {
    const auto li = static_cast<std::size_t>(level);
    const int n = packets_per_level[li];
    util::require(n >= 1, "delta_threshold_sender: level with no packets");
    const int k = shares_required(cfg_.loss_threshold[li], n);
    thresholds_k_[li] = k;
    const crypto::group_key key =
        crypto::mask_to_bits(crypto::group_key{rng_.next()}, cfg_.key_bits);
    keys[li] = key;
    shares_[li] = crypto::shamir_split_key(key, k, n, rng_);
  }
  keys_[slot + key_lead_slots] = std::move(keys);
  while (keys_.size() > 8) keys_.erase(keys_.begin());
}

crypto::shamir_share delta_threshold_sender::share_for(int level,
                                                       int packet_index) const {
  util::require(level >= 1 && level <= cfg_.num_levels,
                "delta_threshold_sender: bad level");
  const auto& s = shares_[static_cast<std::size_t>(level)];
  util::require(packet_index >= 0 &&
                    packet_index < static_cast<int>(s.size()),
                "delta_threshold_sender: bad packet index");
  return s[static_cast<std::size_t>(packet_index)];
}

std::optional<crypto::group_key> delta_threshold_sender::key_for(
    std::int64_t target_slot, int level) const {
  auto it = keys_.find(target_slot);
  if (it == keys_.end()) return std::nullopt;
  if (level < 1 || level > cfg_.num_levels) return std::nullopt;
  return it->second[static_cast<std::size_t>(level)];
}

std::optional<crypto::group_key> reconstruct_threshold_key(
    std::span<const crypto::shamir_share> collected, int k) {
  if (static_cast<int>(collected.size()) < k) return std::nullopt;
  // Any k shares determine the polynomial; use the first k.
  return crypto::shamir_reconstruct_key(collected.subspan(0, static_cast<std::size_t>(k)));
}

}  // namespace mcc::core
