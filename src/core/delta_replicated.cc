#include "core/delta_replicated.h"

#include "core/delta_layered.h"  // key_lead_slots
#include "util/require.h"

namespace mcc::core {

delta_replicated_sender::delta_replicated_sender(int session_id,
                                                 int num_groups, int key_bits,
                                                 std::uint64_t seed)
    : session_id_(session_id),
      num_groups_(num_groups),
      key_bits_(key_bits),
      rng_(seed) {
  util::require(num_groups_ >= 1, "delta_replicated_sender: need >= 1 group");
  acc_.assign(static_cast<std::size_t>(num_groups_) + 1, crypto::zero_key);
  decrease_field_.assign(static_cast<std::size_t>(num_groups_) + 1,
                         crypto::zero_key);
}

crypto::group_key delta_replicated_sender::nonce() {
  return crypto::mask_to_bits(crypto::group_key{rng_.next()}, key_bits_);
}

void delta_replicated_sender::begin_slot(std::int64_t slot,
                                         std::uint32_t auth_mask,
                                         const std::vector<int>&) {
  current_slot_ = slot;
  const auto n = static_cast<std::size_t>(num_groups_);

  replicated_slot_keys keys;
  keys.session_id = session_id_;
  keys.target_slot = slot + key_lead_slots;
  keys.top.assign(n + 1, crypto::zero_key);
  keys.decrease.assign(n + 1, crypto::zero_key);
  keys.increase.assign(n + 1, std::nullopt);

  // Figure 5 precomputation: per-group accumulators, per-group decrease
  // nonces, iota_g = tau_{g-1} on authorization.
  for (std::size_t g = 1; g <= n; ++g) {
    acc_[g] = nonce();
    keys.top[g] = acc_[g];
  }
  for (std::size_t g = 2; g <= n; ++g) {
    keys.decrease[g - 1] = nonce();
    decrease_field_[g] = keys.decrease[g - 1];
    if (auth_mask & (1u << g)) keys.increase[g] = keys.top[g - 1];
  }

  recent_[keys.target_slot] = keys;
  while (recent_.size() > 8) recent_.erase(recent_.begin());
}

void delta_replicated_sender::fill_fields(std::int64_t slot, int group, int,
                                          bool last_in_slot,
                                          sim::flid_data& hdr) {
  util::require(slot == current_slot_,
                "delta_replicated_sender: packet outside current slot");
  const auto g = static_cast<std::size_t>(group);
  if (!last_in_slot) {
    const crypto::group_key c = nonce();
    acc_[g] ^= c;
    hdr.component = c;
  } else {
    hdr.component = acc_[g];
  }
  if (group >= 2) hdr.decrease = decrease_field_[g];
}

const replicated_slot_keys* delta_replicated_sender::keys_for(
    std::int64_t target_slot) const {
  auto it = recent_.find(target_slot);
  return it == recent_.end() ? nullptr : &it->second;
}

replicated_reconstruction reconstruct_replicated(
    const flid::replicated_receiver::slot_record& rec, int current_group,
    int num_groups) {
  replicated_reconstruction out;
  const bool congested = rec.expected < 0 || rec.received < rec.expected;
  if (congested) {
    // Figure 5: u_{g-1} <- decrease field from R_g; n <- g - 1 (null at g=1).
    if (current_group <= 1 || !rec.decrease.has_value()) {
      out.next_group = 0;
      return out;
    }
    out.next_group = current_group - 1;
    out.key = rec.decrease;
    return out;
  }
  // Uncongested: u_g = XOR of component fields of the current group.
  const crypto::group_key tau = rec.xor_components;
  if (current_group < num_groups &&
      (rec.auth_mask & (1u << (current_group + 1)))) {
    // u_{g+1} <- u_g: iota_{g+1} equals tau_g.
    out.next_group = current_group + 1;
  } else {
    out.next_group = current_group;
  }
  out.key = tau;
  return out;
}

}  // namespace mcc::core
