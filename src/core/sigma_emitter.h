// Sender-side SIGMA: packs each slot's key tuples into FEC-protected special
// packets (router-alert) multicast on the session's minimal group, spread
// across the slot (paper section 3.2.1). Expansion factor z = (k + m) / k;
// the paper's evaluation overcomes 50% packet loss, i.e. z = 2.
#ifndef MCC_CORE_SIGMA_EMITTER_H
#define MCC_CORE_SIGMA_EMITTER_H

#include <cstdint>
#include <vector>

#include "core/delta_layered.h"
#include "core/sigma_wire.h"
#include "crypto/rs_code.h"
#include "sim/network.h"

namespace mcc::core {

struct sigma_emitter_config {
  int data_shards = 4;    // k
  int parity_shards = 4;  // m (k + m = z * k; defaults give z = 2)
  int ctrl_header_bytes = 40;
  int slot_number_bits = 8;  // l in the overhead model
};

class sigma_ctrl_emitter {
 public:
  sigma_ctrl_emitter(sim::network& net, sim::node_id sender_host,
                     std::vector<sim::group_addr> groups,
                     sim::time_ns slot_duration, int key_bits,
                     const sigma_emitter_config& cfg = {});

  /// Registers this emitter as the DELTA sender's per-slot key consumer.
  void attach(delta_layered_sender& delta);

  /// Emits the special packets for one slot's key set (callable directly in
  /// tests).
  void emit(const delta_slot_keys& keys, std::int64_t current_slot);

  /// Protocol-agnostic entry point: FEC-codes and transmits an arbitrary
  /// address-key tuple block (used by the threshold protocol, whose tuples
  /// carry top keys only). SIGMA itself never cares which congestion control
  /// protocol produced the block (Requirement 3).
  void emit_block(const sigma_key_block& block, std::int64_t current_slot);

  [[nodiscard]] double expansion_factor() const {
    return code_.expansion_factor();
  }
  [[nodiscard]] const sigma_emitter_config& config() const { return cfg_; }

  struct counters {
    std::uint64_t ctrl_packets = 0;
    std::int64_t ctrl_bytes = 0;     // total on-wire bytes incl. headers
    std::int64_t payload_bytes = 0;  // pre-FEC serialized tuple bytes
    std::int64_t header_bytes = 0;   // header bytes only (h measurement)
    std::uint64_t slots = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

 private:
  sim::network& net_;
  sim::node_id host_;
  std::vector<sim::group_addr> groups_;
  sim::time_ns slot_duration_;
  int key_bits_;
  sigma_emitter_config cfg_;
  crypto::rs_code code_;
  counters stats_;
};

}  // namespace mcc::core

#endif  // MCC_CORE_SIGMA_EMITTER_H
