#include "flid/flid_sender.h"

#include <algorithm>
#include <cmath>

#include "crypto/oneway.h"

namespace mcc::flid {

sim::session_announcement flid_config::announcement() const {
  sim::session_announcement ann;
  ann.session_id = session_id;
  ann.slot_duration = slot_duration;
  std::vector<sim::group_addr> groups;
  groups.reserve(static_cast<std::size_t>(num_groups));
  for (int g = 1; g <= num_groups; ++g) groups.push_back(group(g));
  ann.groups = std::move(groups);
  return ann;
}

flid_sender::flid_sender(sim::network& net, sim::node_id host,
                         const flid_config& cfg, std::uint64_t seed)
    : net_(net), host_(host), cfg_(cfg), rng_(seed) {
  util::require(cfg_.num_groups >= 1 && cfg_.num_groups <= 30,
                "flid_sender: unsupported group count");
  util::require(cfg_.slot_duration > 0, "flid_sender: bad slot duration");
  stats_.auth_count.assign(static_cast<std::size_t>(cfg_.num_groups) + 1, 0);
}

void flid_sender::start(sim::time_ns at) {
  util::require(!started_, "flid_sender: already started");
  started_ = true;
  for (int g = 1; g <= cfg_.num_groups; ++g) {
    net_.register_group_source(cfg_.group(g), host_);
  }
  auto ann = cfg_.announcement();
  ann.sigma_protected = sigma_protected_;
  net_.announce_session(ann);

  const sim::time_ns t = cfg_.slot_duration;
  const std::int64_t first_slot = (at + t - 1) / t;
  net_.sched().at(first_slot * t, [this, first_slot] { begin_slot(first_slot); });
}

std::uint32_t flid_sender::auth_mask_for_slot(std::int64_t slot) {
  if (slot == auth_cache_slot_) return auth_cache_mask_;
  // Hash-derived Bernoulli draws: deterministic per (session seed, slot,
  // group) regardless of evaluation order.
  std::uint32_t mask = 0;
  for (int g = 2; g <= cfg_.num_groups; ++g) {
    const std::uint64_t h = crypto::oneway_mix(
        (static_cast<std::uint64_t>(cfg_.session_id) << 48) ^
        (static_cast<std::uint64_t>(slot) * 0x9e3779b97f4a7c15ULL) ^
        static_cast<std::uint64_t>(g));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < cfg_.upgrade_prob_for(g)) mask |= (1u << g);
  }
  auth_cache_slot_ = slot;
  auth_cache_mask_ = mask;
  return mask;
}

int flid_sender::packets_in_slot(int g, std::int64_t slot) const {
  const double rate = cfg_.group_rate_bps(g);
  const double t = sim::to_seconds(cfg_.slot_duration);
  const double per_packet_bits = 8.0 * cfg_.packet_bytes;
  const auto upto = [&](std::int64_t s) {
    return static_cast<std::int64_t>(
        std::floor(rate * t * static_cast<double>(s) / per_packet_bits));
  };
  const std::int64_t n = upto(slot + 1) - upto(slot);
  // At least one packet per group per slot so the last-in-slot marker and the
  // decrease field are always present (DELTA needs one packet from each group
  // 2..g to deliver decrease keys).
  return static_cast<int>(std::max<std::int64_t>(n, 1));
}

void flid_sender::begin_slot(std::int64_t slot) {
  ++stats_.slots;
  const std::uint32_t mask = auth_mask_for_slot(slot);
  for (int g = 2; g <= cfg_.num_groups; ++g) {
    if (mask & (1u << g)) ++stats_.auth_count[static_cast<std::size_t>(g)];
  }

  std::vector<int> counts(static_cast<std::size_t>(cfg_.num_groups) + 1, 0);
  for (int g = 1; g <= cfg_.num_groups; ++g) {
    counts[static_cast<std::size_t>(g)] = packets_in_slot(g, slot);
  }
  if (delta_ != nullptr) delta_->begin_slot(slot, mask, counts);

  const sim::time_ns t = cfg_.slot_duration;
  const sim::time_ns slot_start = slot * t;
  for (int g = 1; g <= cfg_.num_groups; ++g) {
    const int n = counts[static_cast<std::size_t>(g)];
    for (int i = 0; i < n; ++i) {
      // Even pacing with +-25% jitter: real multicast sources are not
      // phase-locked, and deterministic alignment across sessions would
      // produce pathological drop synchronization at the bottleneck.
      const double jitter = rng_.uniform(-0.25, 0.25);
      const double position = (static_cast<double>(i) + 0.5 + jitter) / n;
      const auto offset = static_cast<sim::time_ns>(
          position * static_cast<double>(t));
      const sim::time_ns when =
          slot_start + std::clamp<sim::time_ns>(offset, 0, t - 1);
      net_.sched().at(when, [this, slot, g, i, n, mask] {
        send_packet(slot, g, i, n, mask);
      });
    }
  }
  net_.sched().at(slot_start + t, [this, slot] { begin_slot(slot + 1); });
}

void flid_sender::send_packet(std::int64_t slot, int g, int seq, int count,
                              std::uint32_t auth_mask) {
  sim::flid_data hdr;
  hdr.session_id = cfg_.session_id;
  hdr.group_index = g;
  hdr.slot = slot;
  hdr.seq_in_slot = seq;
  hdr.packets_in_slot = count;
  hdr.last_in_slot = (seq == count - 1);
  hdr.upgrade_auth_mask = auth_mask;
  if (delta_ != nullptr) {
    delta_->fill_fields(slot, g, seq, hdr.last_in_slot, hdr);
  }

  sim::packet p;
  p.size_bytes = cfg_.packet_bytes;
  p.dst = sim::dest::to_group(cfg_.group(g));
  p.ecn_capable = true;
  if (sigma_tagging_) p.tag = sim::sigma_tag{cfg_.session_id, slot};
  p.hdr = hdr;
  net_.get(host_)->send(std::move(p));
  ++stats_.data_packets;
  stats_.data_bytes += cfg_.packet_bytes;
}

}  // namespace mcc::flid
