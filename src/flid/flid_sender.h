// FLID sender: slotted transmission of N cumulative layers with
// probabilistic per-slot upgrade authorizations (the increase signals of
// FLID-DL / RLC), and a hook through which DELTA injects its in-band key
// material without changing the transmission pattern (paper section 4.1:
// "adopting DELTA does not require from a protocol to change its
// transmission pattern").
#ifndef MCC_FLID_FLID_SENDER_H
#define MCC_FLID_FLID_SENDER_H

#include <cstdint>
#include <vector>

#include "crypto/prng.h"
#include "flid/flid_config.h"
#include "sim/network.h"

namespace mcc::flid {

/// Implemented by the DELTA sender; called by the FLID sender per slot and
/// per packet to fill the component / decrease fields.
class delta_sender_hook {
 public:
  virtual ~delta_sender_hook() = default;
  /// Announces slot `slot` with its upgrade-authorization mask and the packet
  /// counts per group (index 0 unused; 1..N).
  virtual void begin_slot(std::int64_t slot, std::uint32_t auth_mask,
                          const std::vector<int>& packets_per_group) = 0;
  /// Fills hdr.component / hdr.decrease for one data packet.
  virtual void fill_fields(std::int64_t slot, int group, int seq_in_slot,
                           bool last_in_slot, sim::flid_data& hdr) = 0;
};

class flid_sender {
 public:
  flid_sender(sim::network& net, sim::node_id host, const flid_config& cfg,
              std::uint64_t seed);

  /// Registers groups with the network, publishes the session announcement,
  /// and begins slotted transmission at `at` (slot boundaries are absolute:
  /// slot = now / slot_duration).
  void start(sim::time_ns at = 0);

  void set_delta_hook(delta_sender_hook* hook) { delta_ = hook; }
  /// When enabled, data packets carry the SIGMA shim tag (session, slot).
  void set_sigma_tagging(bool on) { sigma_tagging_ = on; }
  void set_sigma_protected(bool on) { sigma_protected_ = on; }

  [[nodiscard]] const flid_config& config() const { return cfg_; }

  /// Upgrade-authorization mask for a slot (deterministic in the seed);
  /// bit g set = upgrade to group g authorized.
  [[nodiscard]] std::uint32_t auth_mask_for_slot(std::int64_t slot);

  /// Deterministic packet count for group g in a slot (pacing quantization,
  /// minimum one packet per group per slot so last-in-slot markers and
  /// decrease fields always exist).
  [[nodiscard]] int packets_in_slot(int g, std::int64_t slot) const;

  struct counters {
    std::uint64_t data_packets = 0;
    std::int64_t data_bytes = 0;
    /// auth_count[g] = slots that authorized an upgrade to group g (for the
    /// f_g measurement of the overhead model, paper section 5.4).
    std::vector<std::uint64_t> auth_count;
    std::uint64_t slots = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

 private:
  void begin_slot(std::int64_t slot);
  void send_packet(std::int64_t slot, int g, int seq, int count,
                   std::uint32_t auth_mask);

  sim::network& net_;
  sim::node_id host_;
  flid_config cfg_;
  crypto::prng rng_;
  delta_sender_hook* delta_ = nullptr;
  bool sigma_tagging_ = false;
  bool sigma_protected_ = false;
  bool started_ = false;
  // Cache of per-slot auth masks (drawn lazily, deterministic per slot).
  std::int64_t auth_cache_slot_ = -1;
  std::uint32_t auth_cache_mask_ = 0;
  counters stats_;
};

}  // namespace mcc::flid

#endif  // MCC_FLID_FLID_SENDER_H
