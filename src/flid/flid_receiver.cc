#include "flid/flid_receiver.h"

#include <algorithm>

namespace mcc::flid {

flid_receiver::flid_receiver(sim::network& net, sim::node_id host,
                             sim::node_id edge_router, const flid_config& cfg,
                             std::unique_ptr<subscription_strategy> strategy)
    : net_(net),
      host_(host),
      edge_router_(edge_router),
      cfg_(cfg),
      strategy_(std::move(strategy)),
      membership_(net, host, edge_router),
      monitor_(net.sched()) {
  util::require(strategy_ != nullptr, "flid_receiver: strategy required");
  join_time_.assign(static_cast<std::size_t>(cfg_.num_groups) + 1, -1);
  net_.get(host_)->add_agent(this);
}

flid_receiver::~flid_receiver() {
  *alive_ = false;
  net_.get(host_)->remove_agent(this);
}

void flid_receiver::start(sim::time_ns at) {
  util::require(!started_, "flid_receiver: already started");
  started_ = true;
  net_.sched().at(at, [this, alive = alive_] {
    if (!*alive) return;
    strategy_->session_start(*this);
    const sim::time_ns t = cfg_.slot_duration;
    eval_slot_ = net_.sched().now() / t;
    arm_fallback();
  });
}

void flid_receiver::arm_fallback() {
  // Blackout fallback: if no later-slot packet triggers the evaluation, run
  // it one full slot after the slot ends (covers total loss of a slot).
  eval_fallback_.cancel();
  const sim::time_ns t = cfg_.slot_duration;
  const sim::time_ns deadline = (eval_slot_ + 2) * t;
  const std::int64_t target = eval_slot_;
  eval_fallback_ = net_.sched().at(
      std::max(deadline, net_.sched().now()),
      [this, alive = alive_, target] {
        if (!*alive) return;
        if (eval_slot_ == target) evaluate_up_to(target);
      });
}

void flid_receiver::evaluate_up_to(std::int64_t slot) {
  while (eval_slot_ <= slot) {
    evaluate_slot(eval_slot_);
    ++eval_slot_;
  }
  arm_fallback();
}

bool flid_receiver::handle_packet(const sim::packet& p, sim::link*) {
  const auto* hdr = sim::header_as<sim::flid_data>(p);
  if (hdr == nullptr || hdr->session_id != cfg_.session_id) return false;
  const int g = hdr->group_index;
  if (g < 1 || g > cfg_.num_groups) return false;

  ++stats_.packets;
  monitor_.on_bytes(p.size_bytes);

  // A packet from a later slot means every earlier slot has drained from the
  // shared FIFO path: evaluate pending slots now.
  if (eval_slot_ >= 0 && hdr->slot > eval_slot_) {
    evaluate_up_to(hdr->slot - 1);
  }

  auto& recs = records_[hdr->slot];
  if (recs.empty()) {
    recs.assign(static_cast<std::size_t>(cfg_.num_groups) + 1,
                group_slot_record{});
  }
  auto& rec = recs[static_cast<std::size_t>(g)];
  ++rec.received;
  rec.expected = hdr->packets_in_slot;
  if (hdr->component_scrubbed || p.ecn_marked) {
    rec.scrubbed = true;
  } else {
    rec.xor_components ^= hdr->component;
  }
  if (g >= 2) rec.decrease = hdr->decrease;
  rec.shares.insert(rec.shares.end(), hdr->level_shares.begin(),
                    hdr->level_shares.end());
  auth_masks_[hdr->slot] |= hdr->upgrade_auth_mask;
  return true;
}

slot_summary flid_receiver::summarize(std::int64_t slot) const {
  slot_summary s;
  s.slot = slot;
  auto it = records_.find(slot);
  if (it != records_.end()) {
    s.groups = it->second;
  } else {
    s.groups.assign(static_cast<std::size_t>(cfg_.num_groups) + 1,
                    group_slot_record{});
  }
  auto am = auth_masks_.find(slot);
  s.auth_mask = am != auth_masks_.end() ? am->second : 0;

  // Level during the slot: contiguous groups subscribed before slot start and
  // still subscribed now.
  const sim::time_ns slot_start = slot * cfg_.slot_duration;
  int lvl = 0;
  for (int g = 1; g <= cfg_.num_groups; ++g) {
    const sim::time_ns jt = join_time_[static_cast<std::size_t>(g)];
    if (jt < 0 || jt > slot_start) break;
    lvl = g;
    s.groups[static_cast<std::size_t>(g)].full_slot = true;
  }
  s.level = lvl;

  // Congested = any full-slot group with missing or invalidated packets
  // (FLID-DL / RLC define congestion as a single packet loss in the slot).
  for (int g = 1; g <= lvl; ++g) {
    if (!s.groups[static_cast<std::size_t>(g)].complete()) {
      s.congested = true;
      break;
    }
  }
  return s;
}

void flid_receiver::set_congestion_path(cm::congestion_manager* manager,
                                        cm::path_id path) {
  util::require(!started_,
                "flid_receiver: attach the congestion manager before start");
  util::require(manager != nullptr,
                "flid_receiver: null congestion manager");
  cm_ = manager;
  cm_path_ = path;
  cm_cum_kbps_.resize(static_cast<std::size_t>(cfg_.num_groups));
  for (int level = 1; level <= cfg_.num_groups; ++level) {
    cm_cum_kbps_[static_cast<std::size_t>(level - 1)] =
        cfg_.cumulative_rate_bps(level) / 1e3;
  }
  cm_trace_ = obs::current_trace();
  if (cm_trace_ != nullptr) {
    cm_track_ = cm_trace_->track("cm/" + net_.get(host_)->name());
  }
}

void flid_receiver::apply_congestion_manager(slot_summary& summary) {
  // Report first, consult second: a slot's own congestion evidence is part
  // of the state the cap is computed from (all co-located receivers fold
  // into the same entry before any of them acts on it).
  cm::observation report;
  report.slot = summary.slot;
  report.congested = summary.congested;
  for (int g = 1; g <= summary.level; ++g) {
    if (summary.groups[static_cast<std::size_t>(g)].scrubbed) {
      report.ecn_marked = true;
      break;
    }
  }
  report.delivered_kbps =
      summary.level > 0
          ? cm_cum_kbps_[static_cast<std::size_t>(summary.level - 1)]
          : 0.0;
  cm_->observe(cm_path_, report);

  const int cap = cm_->level_cap(cm_path_, summary.slot, cm_cum_kbps_);
  if (cap >= cfg_.num_groups) return;
  // Mask authorization above the cap — the same granted-prefix idiom as the
  // population aggregates: bits 1..cap survive, upgrades past the estimated
  // fair level are withheld. Downgrades are never forced; strategies that
  // ignore authorization (attackers) are untouched by design.
  const std::uint32_t masked =
      summary.auth_mask & (cap >= 31 ? ~0u : ((2u << cap) - 2u));
  if (masked == summary.auth_mask) return;
  summary.auth_mask = masked;
  ++stats_.cm_bindings;
  if (cm_trace_ != nullptr) {
    cm_trace_->record(net_.sched().now(), obs::trace_event::cm_cap, cm_track_,
                      static_cast<std::uint64_t>(summary.slot),
                      static_cast<std::uint64_t>(cap));
  }
}

void flid_receiver::evaluate_slot(std::int64_t slot) {
  ++stats_.slots_evaluated;
  slot_summary summary = summarize(slot);
  if (summary.congested) ++stats_.slots_congested;
  if (cm_ != nullptr) apply_congestion_manager(summary);

  const int before = level_;
  const int target = strategy_->on_slot(*this, summary);
  if (target != before) {
    if (target > before) {
      ++stats_.upgrades;
    } else {
      ++stats_.downgrades;
    }
  }

  // Garbage-collect old records.
  while (!records_.empty() && records_.begin()->first <= slot) {
    records_.erase(records_.begin());
  }
  while (!auth_masks_.empty() && auth_masks_.begin()->first <= slot) {
    auth_masks_.erase(auth_masks_.begin());
  }
}

void flid_receiver::set_local_level(int new_level) {
  new_level = std::clamp(new_level, 0, cfg_.num_groups);
  sim::node* h = net_.get(host_);
  if (new_level > level_) {
    for (int g = level_ + 1; g <= new_level; ++g) {
      h->host_join(cfg_.group(g));
      join_time_[static_cast<std::size_t>(g)] = net_.sched().now();
    }
  } else if (new_level < level_) {
    for (int g = new_level + 1; g <= level_; ++g) {
      h->host_leave(cfg_.group(g));
      join_time_[static_cast<std::size_t>(g)] = -1;
    }
  }
  if (new_level != level_) {
    level_ = new_level;
    level_history_.emplace_back(net_.sched().now(), level_);
  }
}

// ---------------------------------------------------------------------------
// Plain strategies
// ---------------------------------------------------------------------------

int honest_level_step(int level, int cap, const slot_summary& s) {
  if (s.level == 0) return level;  // not yet receiving a full slot
  if (s.congested) return level > 1 ? level - 1 : level;
  if (level < cap && s.upgrade_authorized(level + 1)) return level + 1;
  return level;
}

void apply_plain_level(flid_receiver& r, int target) {
  const int level = r.level();
  if (target > level) {
    for (int g = level + 1; g <= target; ++g) {
      r.membership().join(r.config().group(g));
    }
  } else {
    for (int g = level; g > target; --g) {
      r.membership().leave(r.config().group(g));
    }
  }
  r.set_local_level(target);
}

void honest_plain_strategy::session_start(flid_receiver& r) {
  r.set_local_level(1);
  r.membership().join(r.config().group(1));
}

int honest_plain_strategy::on_slot(flid_receiver& r, const slot_summary& s) {
  const int target = honest_level_step(r.level(), r.config().num_groups, s);
  if (target != r.level()) apply_plain_level(r, target);
  return r.level();
}

void inflating_plain_strategy::session_start(flid_receiver& r) {
  r.set_local_level(1);
  r.membership().join(r.config().group(1));
}

int inflating_plain_strategy::on_slot(flid_receiver& r,
                                      const slot_summary& s) {
  const int n = inflate_level_ > 0
                    ? std::min(inflate_level_, r.config().num_groups)
                    : r.config().num_groups;
  if (!inflated_ && r.net().sched().now() >= inflate_at_) {
    inflated_ = true;
    // The attack: raise the subscription via raw IGMP regardless of
    // congestion state.
    for (int g = r.level() + 1; g <= n; ++g) {
      r.membership().join(r.config().group(g));
    }
    r.set_local_level(n);
    return n;
  }
  if (inflated_) {
    // Ignore all congestion signals; keep claiming the inflated level.
    return n;
  }
  // Behave honestly until the attack starts.
  honest_plain_strategy honest;
  return honest.on_slot(r, s);
}

}  // namespace mcc::flid
