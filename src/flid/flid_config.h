// Session parameters for FLID-style cumulative layered multicast
// (paper section 5.1 defaults: 10 groups, 100 Kbps minimal group, cumulative
// rate growing multiplicatively by 1.5 per group, 576-byte packets,
// 500 ms slots for FLID-DL / 250 ms for FLID-DS).
#ifndef MCC_FLID_FLID_CONFIG_H
#define MCC_FLID_FLID_CONFIG_H

#include <cmath>

#include "sim/time.h"
#include "sim/wire.h"
#include "util/require.h"

namespace mcc::flid {

struct flid_config {
  int session_id = 1;
  int num_groups = 10;
  double base_rate_bps = 100e3;   // rate of the minimal group (layer 1)
  double rate_multiplier = 1.5;   // cumulative rate growth per group
  sim::time_ns slot_duration = sim::milliseconds(500);
  int packet_bytes = 576;
  /// Per-slot probability that the protocol authorizes an upgrade to group 2
  /// (the increase signal of FLID-DL, modelled as Bernoulli).
  double upgrade_prob = 0.3;
  /// Geometric decay of the upgrade probability per additional group:
  /// P(authorize g) = upgrade_prob * upgrade_decay^(g-2). FLID-DL and RLC
  /// space increase signals exponentially farther apart for higher layers so
  /// receivers probe high rates rarely.
  double upgrade_decay = 0.85;

  [[nodiscard]] double upgrade_prob_for(int g) const {
    return upgrade_prob * std::pow(upgrade_decay, g - 2);
  }
  /// First multicast group address; group index g maps to base + g - 1.
  int group_addr_base = 10'000;
  /// DELTA key width in bits (paper evaluates b = 16). Must be one of
  /// 16, 32, 64 so keys serialize byte-aligned.
  int key_bits = 16;

  [[nodiscard]] double cumulative_rate_bps(int level) const {
    util::require(level >= 0 && level <= num_groups, "bad subscription level");
    if (level == 0) return 0.0;
    return base_rate_bps * std::pow(rate_multiplier, level - 1);
  }

  /// Rate of the individual group (layer) g.
  [[nodiscard]] double group_rate_bps(int g) const {
    return cumulative_rate_bps(g) - cumulative_rate_bps(g - 1);
  }

  [[nodiscard]] sim::group_addr group(int g) const {
    util::require(g >= 1 && g <= num_groups, "bad group index", g);
    return sim::group_addr{group_addr_base + g - 1};
  }

  [[nodiscard]] int index_of(sim::group_addr a) const {
    const int g = a.value - group_addr_base + 1;
    return (g >= 1 && g <= num_groups) ? g : 0;
  }

  [[nodiscard]] sim::session_announcement announcement() const;
};

}  // namespace mcc::flid

#endif  // MCC_FLID_FLID_CONFIG_H
