// FLID receiver: per-slot reception bookkeeping (loss detection by header
// packet counts, DELTA component accumulation) and a pluggable subscription
// strategy.
//
// The strategy split mirrors the paper's separation of concerns: the
// *receiver* observes its congestion state per slot; the *strategy* decides
// how to act on it — honest IGMP membership (plain FLID-DL), honest
// DELTA/SIGMA key submission (FLID-DS), or one of the misbehaving variants
// used in the attack experiments.
#ifndef MCC_FLID_FLID_RECEIVER_H
#define MCC_FLID_FLID_RECEIVER_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cm/congestion_manager.h"
#include "crypto/key.h"
#include "flid/flid_config.h"
#include "mcast/igmp.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/stats.h"

namespace mcc::flid {

/// Reception record for one (group, slot).
struct group_slot_record {
  int received = 0;
  int expected = -1;  // from header packets_in_slot; -1 = no packet seen
  bool full_slot = false;  // subscribed for the entire slot
  crypto::group_key xor_components{};
  std::optional<crypto::group_key> decrease;
  bool scrubbed = false;  // a component was invalidated (ECN variant)
  /// Shamir shares collected from this group's packets (threshold protocols
  /// only; empty under XOR-based DELTA).
  std::vector<sim::level_share> shares;

  /// All transmitted packets of this group/slot were received intact.
  [[nodiscard]] bool complete() const {
    return expected >= 0 && received >= expected && !scrubbed;
  }
};

/// Everything a strategy needs to act on one evaluated slot.
struct slot_summary {
  std::int64_t slot = 0;
  int level = 0;  // groups subscribed for the whole slot (contiguous 1..level)
  bool congested = false;
  std::uint32_t auth_mask = 0;
  std::vector<group_slot_record> groups;  // index 0 unused; 1..num_groups

  [[nodiscard]] bool upgrade_authorized(int g) const {
    return (auth_mask & (1u << g)) != 0;
  }
};

class flid_receiver;

/// Decides subscription changes after each slot; owns all signalling.
class subscription_strategy {
 public:
  virtual ~subscription_strategy() = default;
  /// Initial admission into the session.
  virtual void session_start(flid_receiver& r) = 0;
  /// Returns the new target subscription level after evaluating `s`.
  virtual int on_slot(flid_receiver& r, const slot_summary& s) = 0;
};

class flid_receiver : public sim::agent {
 public:
  flid_receiver(sim::network& net, sim::node_id host, sim::node_id edge_router,
                const flid_config& cfg,
                std::unique_ptr<subscription_strategy> strategy);
  ~flid_receiver() override;

  /// Joins the session at time `at` (via the strategy) and starts slot
  /// evaluation timers.
  void start(sim::time_ns at);

  bool handle_packet(const sim::packet& p, sim::link* arrival) override;

  // --- state exposed to strategies and experiments ---------------------------
  [[nodiscard]] const flid_config& config() const { return cfg_; }
  [[nodiscard]] sim::network& net() { return net_; }
  [[nodiscard]] sim::node_id host() const { return host_; }
  [[nodiscard]] sim::node_id edge_router() const { return edge_router_; }
  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] sim::throughput_monitor& monitor() { return monitor_; }
  [[nodiscard]] mcast::membership_client& membership() { return membership_; }
  [[nodiscard]] const mcast::membership_client& membership() const {
    return membership_;
  }
  /// The strategy driving this receiver (adversary::measure_cost inspects it
  /// to attribute control-plane spend per receiver).
  [[nodiscard]] const subscription_strategy& strategy() const {
    return *strategy_;
  }

  /// Subscription level over time, one entry per change: (time, level).
  [[nodiscard]] const std::vector<std::pair<sim::time_ns, int>>& level_history()
      const {
    return level_history_;
  }

  /// Attaches this receiver to a shared congestion manager (exp::testbed's
  /// `cm` facility): every evaluated slot is reported to `manager` under
  /// `path`, and the slot summary's upgrade-authorization mask is capped to
  /// the manager's level_cap before the strategy sees it. Detached (the
  /// default), slot evaluation is byte-identical to the legacy path. The
  /// caller registers/unregisters the session with the manager; this only
  /// wires the data plane. Must be called before start().
  void set_congestion_path(cm::congestion_manager* manager, cm::path_id path);

  /// The congestion manager this receiver reports to; nullptr = detached.
  [[nodiscard]] cm::congestion_manager* congestion_manager() const {
    return cm_;
  }

  // --- primitives used by strategies ------------------------------------------
  /// Updates the cumulative subscription level: joins/leaves local host state
  /// and records join times for full-slot bookkeeping. Does NOT signal the
  /// network (strategies do that via IGMP or SIGMA messages).
  void set_local_level(int new_level);

  struct counters {
    std::uint64_t packets = 0;
    std::uint64_t slots_congested = 0;
    std::uint64_t slots_evaluated = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t downgrades = 0;
    /// Slots where the shared congestion manager's cap actually removed
    /// upgrade-authorization bits the slot had granted. Zero bindings over a
    /// run proves the strategy saw exactly the legacy summaries (the
    /// cm_test conformance law: no bindings => byte-identical behaviour).
    std::uint64_t cm_bindings = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

 private:
  void evaluate_slot(std::int64_t slot);
  void evaluate_up_to(std::int64_t slot);  // evaluates [eval_slot_, slot]
  void arm_fallback();
  [[nodiscard]] slot_summary summarize(std::int64_t slot) const;
  /// Reports `summary` to the shared congestion manager and caps its
  /// auth_mask to the manager's level cap (no-op when detached).
  void apply_congestion_manager(slot_summary& summary);

  sim::network& net_;
  sim::node_id host_;
  sim::node_id edge_router_;
  flid_config cfg_;
  std::unique_ptr<subscription_strategy> strategy_;
  mcast::membership_client membership_;
  sim::throughput_monitor monitor_;

  /// Shared congestion manager (exp::testbed facility); nullptr = detached,
  /// which keeps slot evaluation byte-identical to the legacy path.
  cm::congestion_manager* cm_ = nullptr;
  cm::path_id cm_path_{};
  /// Cumulative per-level rates in Kbps, precomputed at attach time so slot
  /// evaluation consults the manager without per-slot allocation.
  std::vector<double> cm_cum_kbps_;
  obs::trace_buffer* cm_trace_ = nullptr;
  std::uint32_t cm_track_ = 0;

  int level_ = 0;  // current target subscription level
  std::vector<sim::time_ns> join_time_;  // per group (1..N); -1 = not joined
  /// Next slot awaiting evaluation. Slot s is evaluated when the first
  /// packet of a later slot arrives (the session's packets share one FIFO
  /// path, so a slot-(s+1) arrival implies slot s is fully drained), with a
  /// wall-clock fallback for blackouts.
  std::int64_t eval_slot_ = -1;
  sim::event_handle eval_fallback_;
  // slot -> per-group records (1..N at indices 1..N).
  std::map<std::int64_t, std::vector<group_slot_record>> records_;
  std::map<std::int64_t, std::uint32_t> auth_masks_;
  std::vector<std::pair<sim::time_ns, int>> level_history_;
  bool started_ = false;
  /// Liveness token captured by scheduled lambdas so a destroyed receiver's
  /// pending timer events become no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  counters stats_;
};

// ---------------------------------------------------------------------------
// Plain-IGMP strategies (the unprotected world of Figure 1)
// ---------------------------------------------------------------------------

/// One honest FLID-DL control step: the new target level for a receiver at
/// `level` after evaluating `s`, never exceeding `cap` — drop the top layer
/// on a lossy slot, add a layer when authorized and loss-free. Shared by
/// honest_plain_strategy (cap = num_groups) and population aggregates, whose
/// cap is the highest layer any live member demands.
[[nodiscard]] int honest_level_step(int level, int cap, const slot_summary& s);

/// Applies a target level through the plain control plane: IGMP joins/leaves
/// for the delta, then the local level update (the exact message order of the
/// honest strategy).
void apply_plain_level(flid_receiver& r, int target);

/// Well-behaved FLID-DL receiver: drop the top layer on a lossy slot, add a
/// layer when authorized and loss-free.
class honest_plain_strategy : public subscription_strategy {
 public:
  void session_start(flid_receiver& r) override;
  int on_slot(flid_receiver& r, const slot_summary& s) override;
};

/// Misbehaving receiver: behaves honestly until `inflate_at`, then raises its
/// subscription to `inflate_level` via raw IGMP and ignores congestion
/// signals from then on (the attack of Figure 1). inflate_level <= 0 means
/// "all groups".
class inflating_plain_strategy : public subscription_strategy {
 public:
  explicit inflating_plain_strategy(sim::time_ns inflate_at,
                                    int inflate_level = 0)
      : inflate_at_(inflate_at), inflate_level_(inflate_level) {}
  void session_start(flid_receiver& r) override;
  int on_slot(flid_receiver& r, const slot_summary& s) override;

 private:
  sim::time_ns inflate_at_;
  int inflate_level_;
  bool inflated_ = false;
};

}  // namespace mcc::flid

#endif  // MCC_FLID_FLID_RECEIVER_H
