#include "flid/replicated.h"

#include <cmath>

#include "crypto/oneway.h"

namespace mcc::flid {

replicated_sender::replicated_sender(sim::network& net, sim::node_id host,
                                     const flid_config& cfg, std::uint64_t)
    : net_(net), host_(host), cfg_(cfg) {
  util::require(cfg_.num_groups >= 1 && cfg_.num_groups <= 30,
                "replicated_sender: unsupported group count");
}

void replicated_sender::start(sim::time_ns at) {
  util::require(!started_, "replicated_sender: already started");
  started_ = true;
  for (int g = 1; g <= cfg_.num_groups; ++g) {
    net_.register_group_source(cfg_.group(g), host_);
  }
  auto ann = cfg_.announcement();
  ann.sigma_protected = sigma_protected_;
  net_.announce_session(ann);
  const sim::time_ns t = cfg_.slot_duration;
  const std::int64_t first_slot = (at + t - 1) / t;
  net_.sched().at(first_slot * t, [this, first_slot] { begin_slot(first_slot); });
}

std::uint32_t replicated_sender::auth_mask_for_slot(std::int64_t slot) {
  std::uint32_t mask = 0;
  for (int g = 2; g <= cfg_.num_groups; ++g) {
    const std::uint64_t h = crypto::oneway_mix(
        (static_cast<std::uint64_t>(cfg_.session_id) << 48) ^ 0x5a5aULL ^
        (static_cast<std::uint64_t>(slot) * 0x9e3779b97f4a7c15ULL) ^
        static_cast<std::uint64_t>(g));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < cfg_.upgrade_prob_for(g)) mask |= (1u << g);
  }
  return mask;
}

int replicated_sender::packets_in_slot(int g, std::int64_t slot) const {
  // In replicated multicast, group g carries the whole content at the level-g
  // rate (not a differential layer).
  const double rate = cfg_.cumulative_rate_bps(g);
  const double t = sim::to_seconds(cfg_.slot_duration);
  const double per_packet_bits = 8.0 * cfg_.packet_bytes;
  const auto upto = [&](std::int64_t s) {
    return static_cast<std::int64_t>(
        std::floor(rate * t * static_cast<double>(s) / per_packet_bits));
  };
  return static_cast<int>(std::max<std::int64_t>(upto(slot + 1) - upto(slot), 1));
}

void replicated_sender::begin_slot(std::int64_t slot) {
  const std::uint32_t mask = auth_mask_for_slot(slot);
  std::vector<int> counts(static_cast<std::size_t>(cfg_.num_groups) + 1, 0);
  for (int g = 1; g <= cfg_.num_groups; ++g) {
    counts[static_cast<std::size_t>(g)] = packets_in_slot(g, slot);
  }
  if (delta_ != nullptr) delta_->begin_slot(slot, mask, counts);

  const sim::time_ns t = cfg_.slot_duration;
  const sim::time_ns slot_start = slot * t;
  for (int g = 1; g <= cfg_.num_groups; ++g) {
    const int n = counts[static_cast<std::size_t>(g)];
    for (int i = 0; i < n; ++i) {
      const sim::time_ns when =
          slot_start + (2 * static_cast<sim::time_ns>(i) + 1) * t / (2 * n);
      net_.sched().at(when, [this, slot, g, i, n, mask] {
        send_packet(slot, g, i, n, mask);
      });
    }
  }
  net_.sched().at(slot_start + t, [this, slot] { begin_slot(slot + 1); });
}

void replicated_sender::send_packet(std::int64_t slot, int g, int seq,
                                    int count, std::uint32_t auth_mask) {
  sim::flid_data hdr;
  hdr.session_id = cfg_.session_id;
  hdr.group_index = g;
  hdr.slot = slot;
  hdr.seq_in_slot = seq;
  hdr.packets_in_slot = count;
  hdr.last_in_slot = (seq == count - 1);
  hdr.upgrade_auth_mask = auth_mask;
  if (delta_ != nullptr) {
    delta_->fill_fields(slot, g, seq, hdr.last_in_slot, hdr);
  }
  sim::packet p;
  p.size_bytes = cfg_.packet_bytes;
  p.dst = sim::dest::to_group(cfg_.group(g));
  p.ecn_capable = true;
  if (sigma_tagging_) p.tag = sim::sigma_tag{cfg_.session_id, slot};
  p.hdr = hdr;
  net_.get(host_)->send(std::move(p));
}

// ---------------------------------------------------------------------------
// replicated_receiver
// ---------------------------------------------------------------------------

replicated_receiver::replicated_receiver(sim::network& net, sim::node_id host,
                                         sim::node_id edge_router,
                                         const flid_config& cfg)
    : net_(net),
      host_(host),
      cfg_(cfg),
      membership_(net, host, edge_router),
      monitor_(net.sched()) {
  net_.get(host_)->add_agent(this);
}

replicated_receiver::~replicated_receiver() {
  net_.get(host_)->remove_agent(this);
}

void replicated_receiver::start(sim::time_ns at) {
  net_.sched().at(at, [this] {
    group_ = 1;
    join_time_ = net_.sched().now();
    membership_.join(cfg_.group(1));
    const sim::time_ns t = cfg_.slot_duration;
    const std::int64_t current = net_.sched().now() / t;
    net_.sched().at((current + 1) * t + t / 2, [this, current] {
      evaluate_slot(current);
    });
  });
}

bool replicated_receiver::handle_packet(const sim::packet& p, sim::link*) {
  const auto* hdr = sim::header_as<sim::flid_data>(p);
  if (hdr == nullptr || hdr->session_id != cfg_.session_id) return false;
  monitor_.on_bytes(p.size_bytes);
  auto& rec = records_[hdr->slot];
  if (hdr->group_index == group_) {
    ++rec.received;
    rec.expected = hdr->packets_in_slot;
    rec.xor_components ^= hdr->component;
  }
  if (hdr->group_index == group_ + 1) rec.decrease = hdr->decrease;
  rec.auth_mask |= hdr->upgrade_auth_mask;
  return true;
}

const replicated_receiver::slot_record* replicated_receiver::record_for(
    std::int64_t slot) const {
  auto it = records_.find(slot);
  return it == records_.end() ? nullptr : &it->second;
}

void replicated_receiver::evaluate_slot(std::int64_t slot) {
  const sim::time_ns t = cfg_.slot_duration;
  const bool full_slot = join_time_ >= 0 && join_time_ <= slot * t;
  if (full_slot) {
    auto it = records_.find(slot);
    const bool complete = it != records_.end() &&
                          it->second.expected >= 0 &&
                          it->second.received >= it->second.expected;
    const std::uint32_t mask =
        it != records_.end() ? it->second.auth_mask : 0;
    if (!complete) {
      if (group_ > 1) {
        membership_.leave(cfg_.group(group_));
        --group_;
        membership_.join(cfg_.group(group_));
        join_time_ = net_.sched().now();
      }
    } else if (group_ < cfg_.num_groups && (mask & (1u << (group_ + 1)))) {
      membership_.leave(cfg_.group(group_));
      ++group_;
      membership_.join(cfg_.group(group_));
      join_time_ = net_.sched().now();
    }
  }
  while (!records_.empty() && records_.begin()->first <= slot) {
    records_.erase(records_.begin());
  }
  net_.sched().at((slot + 2) * t + t / 2,
                  [this, slot] { evaluate_slot(slot + 1); });
}

}  // namespace mcc::flid
