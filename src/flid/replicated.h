// Replicated multicast (destination-set-grouping style, paper section 3.1.2
// "Session structure"): each group of the session carries the same content at
// a different rate; a receiver subscribes to exactly one group, switching
// down on congestion and up on authorization.
//
// Reuses the FLID slot structure and wire header; the subscription level g
// means "member of group g only" instead of "member of groups 1..g".
#ifndef MCC_FLID_REPLICATED_H
#define MCC_FLID_REPLICATED_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "flid/flid_config.h"
#include "flid/flid_receiver.h"
#include "flid/flid_sender.h"
#include "mcast/igmp.h"
#include "sim/network.h"
#include "sim/stats.h"

namespace mcc::flid {

/// Sender: transmits every group at its own (non-cumulative) rate. Group g
/// transmits at cumulative_rate(g) — in replicated multicast each group's
/// rate is the full session rate at quality level g.
class replicated_sender {
 public:
  replicated_sender(sim::network& net, sim::node_id host,
                    const flid_config& cfg, std::uint64_t seed);

  void start(sim::time_ns at = 0);
  void set_delta_hook(delta_sender_hook* hook) { delta_ = hook; }
  void set_sigma_tagging(bool on) { sigma_tagging_ = on; }
  void set_sigma_protected(bool on) { sigma_protected_ = on; }

  [[nodiscard]] const flid_config& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t auth_mask_for_slot(std::int64_t slot);
  [[nodiscard]] int packets_in_slot(int g, std::int64_t slot) const;

 private:
  void begin_slot(std::int64_t slot);
  void send_packet(std::int64_t slot, int g, int seq, int count,
                   std::uint32_t auth_mask);

  sim::network& net_;
  sim::node_id host_;
  flid_config cfg_;
  delta_sender_hook* delta_ = nullptr;
  bool sigma_tagging_ = false;
  bool sigma_protected_ = false;
  bool started_ = false;
};

/// Honest receiver for the replicated protocol over plain IGMP: one group at
/// a time; down on a lossy slot, up on authorization.
class replicated_receiver : public sim::agent {
 public:
  replicated_receiver(sim::network& net, sim::node_id host,
                      sim::node_id edge_router, const flid_config& cfg);
  ~replicated_receiver() override;

  void start(sim::time_ns at);
  bool handle_packet(const sim::packet& p, sim::link* arrival) override;

  [[nodiscard]] int current_group() const { return group_; }
  [[nodiscard]] sim::throughput_monitor& monitor() { return monitor_; }

  /// Record of one evaluated slot for the current group (exposed so the
  /// replicated DELTA receiver can reconstruct keys from it in tests).
  struct slot_record {
    int received = 0;
    int expected = -1;
    crypto::group_key xor_components{};
    std::optional<crypto::group_key> decrease;
    std::uint32_t auth_mask = 0;
  };
  [[nodiscard]] const slot_record* record_for(std::int64_t slot) const;

 private:
  void evaluate_slot(std::int64_t slot);

  sim::network& net_;
  sim::node_id host_;
  flid_config cfg_;
  mcast::membership_client membership_;
  sim::throughput_monitor monitor_;
  int group_ = 0;  // current (only) subscribed group
  sim::time_ns join_time_ = -1;
  std::map<std::int64_t, slot_record> records_;
};

}  // namespace mcc::flid

#endif  // MCC_FLID_REPLICATED_H
