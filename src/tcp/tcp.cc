#include "tcp/tcp.h"

#include <algorithm>
#include <cmath>

namespace mcc::tcp {

// ---------------------------------------------------------------------------
// tcp_sink
// ---------------------------------------------------------------------------

tcp_sink::tcp_sink(sim::network& net, sim::node_id host, int flow_id,
                   int ack_bytes)
    : net_(net),
      host_(host),
      flow_id_(flow_id),
      ack_bytes_(ack_bytes),
      monitor_(net.sched()) {
  net_.get(host_)->add_agent(this);
}

bool tcp_sink::handle_packet(const sim::packet& p, sim::link*) {
  const auto* seg = sim::header_as<sim::tcp_segment>(p);
  if (seg == nullptr || seg->is_ack || seg->flow_id != flow_id_) return false;

  if (seg->seq == next_expected_) {
    ++next_expected_;
    monitor_.on_bytes(p.size_bytes);
    // Drain any buffered in-order continuation.
    while (out_of_order_.contains(next_expected_)) {
      out_of_order_.erase(next_expected_);
      ++next_expected_;
      monitor_.on_bytes(p.size_bytes);
    }
  } else if (seg->seq > next_expected_) {
    out_of_order_.insert(seg->seq);
  }
  // Cumulative ACK for every arriving data segment.
  sim::packet ack;
  ack.size_bytes = ack_bytes_;
  ack.dst = sim::dest::to_node(p.src);
  ack.hdr = sim::tcp_segment{flow_id_, 0, next_expected_, /*is_ack=*/true};
  net_.get(host_)->send(std::move(ack));
  return true;
}

// ---------------------------------------------------------------------------
// tcp_sender
// ---------------------------------------------------------------------------

tcp_sender::tcp_sender(sim::network& net, sim::node_id host, sim::node_id peer,
                       const tcp_config& cfg)
    : net_(net),
      host_(host),
      peer_(peer),
      cfg_(cfg),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(cfg.initial_ssthresh) {
  net_.get(host_)->add_agent(this);
  net_.sched().at(cfg_.start_time, [this] { try_send(); });
}

bool tcp_sender::handle_packet(const sim::packet& p, sim::link*) {
  const auto* seg = sim::header_as<sim::tcp_segment>(p);
  if (seg == nullptr || !seg->is_ack || seg->flow_id != cfg_.flow_id) {
    return false;
  }
  ++stats_.acks_received;
  on_ack(seg->ack);
  return true;
}

void tcp_sender::try_send() {
  const auto window = static_cast<std::int64_t>(std::floor(cwnd_));
  while (next_seq_ < snd_una_ + window) {
    send_segment(next_seq_, /*retransmission=*/next_seq_ < recover_);
    ++next_seq_;
  }
}

void tcp_sender::send_segment(std::int64_t seq, bool retransmission) {
  sim::packet p;
  p.size_bytes = cfg_.segment_bytes;
  p.dst = sim::dest::to_node(peer_);
  p.hdr = sim::tcp_segment{cfg_.flow_id, seq, 0, /*is_ack=*/false};
  net_.get(host_)->send(std::move(p));
  ++stats_.segments_sent;
  if (retransmission) {
    ++stats_.retransmits;
    if (seq == timed_seq_) timed_seq_ = -1;  // Karn: never time retransmits
  } else if (timed_seq_ < 0) {
    // Karn's algorithm: time a fresh segment only.
    timed_seq_ = seq;
    timed_sent_at_ = net_.sched().now();
  }
  if (!timer_.pending()) arm_timer();
}

void tcp_sender::on_ack(std::int64_t ack) {
  if (ack > snd_una_) {
    // New data acknowledged.
    if (timed_seq_ >= 0 && ack > timed_seq_) {
      sample_rtt(net_.sched().now() - timed_sent_at_);
      timed_seq_ = -1;
    }
    if (in_recovery_) {
      // Reno deflates and exits recovery on the first new ACK.
      cwnd_ = ssthresh_;
      in_recovery_ = false;
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
    snd_una_ = ack;
    dup_count_ = 0;
    backoff_ = 1;
    timer_.cancel();
    if (next_seq_ > snd_una_) arm_timer();
    try_send();
    return;
  }
  // Duplicate ACK.
  if (next_seq_ == snd_una_) return;  // nothing in flight; stale ack
  ++dup_count_;
  if (in_recovery_) {
    cwnd_ += 1.0;  // inflate per additional dupack
    try_send();
    return;
  }
  if (dup_count_ == cfg_.dupack_threshold) {
    ++stats_.fast_recoveries;
    const double flight = static_cast<double>(next_seq_ - snd_una_);
    ssthresh_ = std::max(flight / 2.0, 2.0);
    send_segment(snd_una_, /*retransmission=*/true);
    cwnd_ = ssthresh_ + static_cast<double>(cfg_.dupack_threshold);
    in_recovery_ = true;
    recover_ = next_seq_;
    timer_.cancel();
    arm_timer();
  }
}

void tcp_sender::sample_rtt(sim::time_ns sample) {
  const double r = sim::to_seconds(sample);
  if (!rtt_valid_) {
    srtt_s_ = r;
    rttvar_s_ = r / 2.0;
    rtt_valid_ = true;
  } else {
    constexpr double alpha = 0.125;
    constexpr double beta = 0.25;
    rttvar_s_ = (1 - beta) * rttvar_s_ + beta * std::abs(srtt_s_ - r);
    srtt_s_ = (1 - alpha) * srtt_s_ + alpha * r;
  }
}

sim::time_ns tcp_sender::rto() const {
  double base_s = rtt_valid_ ? srtt_s_ + 4.0 * rttvar_s_ : 1.0;
  base_s *= static_cast<double>(backoff_);
  const auto rto_ns = sim::seconds(base_s);
  return std::clamp(rto_ns, cfg_.min_rto, cfg_.max_rto);
}

void tcp_sender::arm_timer() {
  timer_ = net_.sched().after(rto(), [this] { on_timeout(); });
}

void tcp_sender::on_timeout() {
  if (next_seq_ == snd_una_) return;  // nothing outstanding
  ++stats_.timeouts;
  const double flight = static_cast<double>(next_seq_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_count_ = 0;
  in_recovery_ = false;
  backoff_ = std::min(backoff_ * 2, 64);
  timed_seq_ = -1;  // Karn: do not time retransmissions
  // Go-back-N: rewind and retransmit from the first unacknowledged segment.
  recover_ = next_seq_;
  next_seq_ = snd_una_;
  arm_timer();
  try_send();
}

}  // namespace mcc::tcp
