// TCP Reno: slow start, congestion avoidance, fast retransmit, fast recovery,
// retransmission timeout with exponential backoff (ns-2 style, sequence
// numbers count segments).
//
// This is the competing unicast workload of the paper's evaluation (receivers
// T1, T2 in Figures 1 and 7, and the n TCP sessions in Figure 8(d)).
#ifndef MCC_TCP_TCP_H
#define MCC_TCP_TCP_H

#include <cstdint>
#include <map>
#include <set>

#include "sim/network.h"
#include "sim/stats.h"

namespace mcc::tcp {

struct tcp_config {
  int flow_id = 0;
  int segment_bytes = 576;  // wire size of a data segment
  int ack_bytes = 40;
  double initial_cwnd = 1.0;       // segments
  double initial_ssthresh = 64.0;  // segments
  int dupack_threshold = 3;
  sim::time_ns min_rto = sim::milliseconds(200);
  sim::time_ns max_rto = sim::seconds(60.0);
  sim::time_ns start_time = 0;
};

/// Receiving endpoint: cumulative ACKs, out-of-order buffering, goodput
/// accounting (in-order delivered payload).
class tcp_sink : public sim::agent {
 public:
  tcp_sink(sim::network& net, sim::node_id host, int flow_id, int ack_bytes);
  bool handle_packet(const sim::packet& p, sim::link* arrival) override;

  [[nodiscard]] sim::throughput_monitor& monitor() { return monitor_; }
  [[nodiscard]] std::int64_t next_expected() const { return next_expected_; }

 private:
  sim::network& net_;
  sim::node_id host_;
  int flow_id_;
  int ack_bytes_;
  std::int64_t next_expected_ = 0;
  std::set<std::int64_t> out_of_order_;
  sim::throughput_monitor monitor_;
};

/// Sending endpoint (infinite backlog, FTP-style).
class tcp_sender : public sim::agent {
 public:
  tcp_sender(sim::network& net, sim::node_id host, sim::node_id peer,
             const tcp_config& cfg);
  bool handle_packet(const sim::packet& p, sim::link* arrival) override;

  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] double ssthresh() const { return ssthresh_; }
  [[nodiscard]] bool in_fast_recovery() const { return in_recovery_; }

  struct counters {
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_recoveries = 0;
    std::uint64_t acks_received = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

 private:
  void try_send();
  void send_segment(std::int64_t seq, bool retransmission);
  void on_ack(std::int64_t ack);
  void arm_timer();
  void on_timeout();
  void sample_rtt(sim::time_ns sample);
  [[nodiscard]] sim::time_ns rto() const;

  sim::network& net_;
  sim::node_id host_;
  sim::node_id peer_;
  tcp_config cfg_;

  std::int64_t next_seq_ = 0;  // next new segment to transmit
  std::int64_t snd_una_ = 0;   // lowest unacknowledged segment
  double cwnd_;
  double ssthresh_;
  int dup_count_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;

  // RTT estimation (Karn: only one timed, never-retransmitted segment).
  bool rtt_valid_ = false;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  std::int64_t timed_seq_ = -1;
  sim::time_ns timed_sent_at_ = 0;
  int backoff_ = 1;

  sim::event_handle timer_;
  counters stats_;
};

}  // namespace mcc::tcp

#endif  // MCC_TCP_TCP_H
