// Pluggable adversary subsystem: scripted attack strategies for multicast
// receivers, built on the same subscription_strategy seam the honest
// protocol uses.
//
// A receiver's (mis)behaviour is described declaratively by an
// adversary::profile — which attack, when it starts, and its shape
// parameters — and compiled into a concrete flid::subscription_strategy by
// make_strategy() for either protocol world:
//
//   * protocol::plain — raw IGMP membership (FLID-DL, the unprotected world
//     of paper Figure 1): the router honours any join.
//   * protocol::sigma — key-based access control (FLID-DS, Figures 6/7):
//     every claimed layer needs a DELTA-reconstructible key, so the attack
//     surface is the key machinery itself.
//
// Five attack strategies ship (plus honest):
//
//   inflate_once   The paper's attack: honest until `start`, then claim the
//                  maximal subscription forever and ignore congestion. In
//                  SIGMA mode, unprovable layers are backed by the
//                  configured key_mode (best-effort / stale replay / random
//                  guessing, section 4.2). Ports the legacy
//                  receiver_options::inflate fields bit-exactly.
//   pulse_inflate  On/off oscillation of the same attack, tuned against
//                  DELTA's measurement windows: inflate for `pulse_on`,
//                  behave honestly for `pulse_off`, repeat. The off phases
//                  let the attacker re-prove keys at its entitled level, so
//                  each on phase restarts from a clean slate — the
//                  worst case for time-to-containment.
//   churn_flap     Rapid join/leave across layers: alternate between
//                  climbing and collapsing the subscription every
//                  `flap_period_slots` slots, thrashing IGMP graft/prune
//                  and SIGMA's per-interface authorization state. A state
//                  attack, not a bandwidth attack.
//   deaf_receiver  Ignores congestion signals and never drops a layer:
//                  climbs whenever the protocol authorizes an upgrade and
//                  holds everything it ever had. The "broken client"
//                  shape rather than a deliberate thief.
//   collusion      N receivers (one coalition id) pool reconstructed keys
//                  through a shared collusion_coordinator: each colluder
//                  deposits what it can prove and replays pool keys for
//                  layers its own congestion state does not entitle it to
//                  (paper section 4.2's key-sharing attack; defeated by
//                  interface keying). In plain mode there are no keys to
//                  share, so collusion degenerates to per-member inflation.
//
// Two closed-loop (adaptive) strategies bound the worst case instead of the
// typical case — both are driven by the slot_feedback hook on the SIGMA
// strategy interface (core::honest_sigma_strategy::on_feedback):
//
//   adaptive_pulse Measurement-driven pulse_inflate: probes once to measure
//                  the enforcement lag (onset -> observed claw-back), then
//                  attacks for exactly that long each cycle, retreating to
//                  the honest machinery just before punishment lands and
//                  returning as soon as keys are re-proven. The duty cycle
//                  converges to lag/(lag + recovery) — the best sustained
//                  theft a pulsing attacker can extract from SIGMA's
//                  enforcement granularity.
//   adaptive_churn Grace-window free-rider synchronized to SIGMA's two-slot
//                  keyless grace: session-join, consume the grace, then
//                  unsubscribe (wiping the interface state, and with it the
//                  pending probation) and rejoin for a fresh window — data
//                  forever without ever proving a key. A worst case for the
//                  keyless-admission policy, not a bandwidth attack (only
//                  the minimal group is ever granted).
//
// In the plain world neither enforcement signal exists (the router honours
// every join), so the adaptive kinds compile to their scripted counterparts
// (pulse_inflate / churn_flap) there.
//
// All strategies are deterministic: randomness comes only from seeds handed
// in by the builder (exp::testbed's seed chain), and the adaptive loops are
// pure functions of observed slot feedback, so attack runs are bit-identical
// across exp::sweep --jobs counts, like the rest of the engine.
#ifndef MCC_ADVERSARY_ADVERSARY_H
#define MCC_ADVERSARY_ADVERSARY_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/flid_ds.h"
#include "crypto/key.h"
#include "flid/flid_receiver.h"
#include "sim/time.h"

namespace mcc::adversary {

/// Which protocol world the strategy drives (see file comment).
enum class protocol { plain, sigma };

/// The attack taxonomy. `honest` is a first-class member so a profile can
/// express "no attack" and factories need no special case.
enum class strategy_kind {
  honest,
  inflate_once,
  pulse_inflate,
  churn_flap,
  deaf_receiver,
  collusion,
  adaptive_pulse,
  adaptive_churn,
};

/// Canonical flag spelling ("inflate_once", "churn_flap", ...).
[[nodiscard]] const char* strategy_name(strategy_kind k);
/// Inverse of strategy_name; nullopt on unknown.
[[nodiscard]] std::optional<strategy_kind> strategy_from_name(
    const std::string& name);
/// Every attacking kind, in declaration order (excludes honest) — the
/// default strategy axis of the attack-matrix bench.
[[nodiscard]] const std::vector<strategy_kind>& all_attacks();

/// How a SIGMA attacker backs layers it cannot prove (hoisted alias of
/// core::misbehaving_sigma_strategy::key_mode).
using key_mode = core::misbehaving_sigma_strategy::key_mode;

/// Canonical flag spelling ("best_effort", "replay", "guess").
[[nodiscard]] const char* key_mode_name(key_mode m);
/// Inverse of key_mode_name; nullopt on unknown.
[[nodiscard]] std::optional<key_mode> key_mode_from_name(
    const std::string& name);
/// Bench-main glue: like key_mode_from_name, but an unknown name prints a
/// friendly message and exits(1) — the shared parser every bench with an
/// --attack-keys flag uses instead of rolling its own.
[[nodiscard]] key_mode key_mode_from_flag(const std::string& name);

/// Declarative description of one receiver's (mis)behaviour. Defaults are
/// honest; factories below fill the fields each strategy reads.
struct profile {
  strategy_kind kind = strategy_kind::honest;
  /// Attack onset. Every strategy behaves honestly before this time.
  sim::time_ns start = 0;
  /// inflate_once / pulse_inflate, plain (IGMP) world only: level the
  /// attacker claims (<= 0: all groups, the strongest attack). SIGMA
  /// attackers always claim everything — entitlement, not the script, is
  /// what caps them (matching the legacy receiver_options semantics).
  int inflate_level = 0;
  /// SIGMA mode: how unprovable layers are backed.
  key_mode keys = key_mode::guess;
  /// pulse_inflate: attack / recovery phase durations. adaptive_pulse reads
  /// pulse_on as its maximal probe duration (phases are measured after the
  /// first claw-back) and ignores pulse_off.
  sim::time_ns pulse_on = sim::seconds(5.0);
  sim::time_ns pulse_off = sim::seconds(5.0);
  /// churn_flap: slots per phase (1 = toggle every slot) and — in the
  /// plain world — the level flapped up to (<= 0: all groups). The SIGMA
  /// churner climbs by honest entitlement instead; depth does not apply.
  int flap_period_slots = 1;
  int flap_depth = 0;
  /// collusion: receivers sharing a coalition id share one key pool.
  int coalition = 1;

  [[nodiscard]] bool attacks() const { return kind != strategy_kind::honest; }
};

// Profile factories, one per strategy.
[[nodiscard]] profile honest();
[[nodiscard]] profile inflate_once(sim::time_ns start,
                                   key_mode keys = key_mode::guess,
                                   int inflate_level = 0);
[[nodiscard]] profile pulse_inflate(sim::time_ns start,
                                    sim::time_ns on = sim::seconds(5.0),
                                    sim::time_ns off = sim::seconds(5.0),
                                    key_mode keys = key_mode::guess);
[[nodiscard]] profile churn_flap(sim::time_ns start, int period_slots = 1,
                                 int depth = 0);
[[nodiscard]] profile deaf_receiver(sim::time_ns start);
[[nodiscard]] profile collusion(sim::time_ns start, int coalition = 1,
                                key_mode keys = key_mode::best_effort);
/// Adaptive pulse: `on` is the maximal probe duration (how long the first
/// attack phase may run while the enforcement lag is still unmeasured);
/// later phases use the measured lag. In the plain world this compiles to
/// pulse_inflate(start, on, pulse_off).
[[nodiscard]] profile adaptive_pulse(sim::time_ns start,
                                     sim::time_ns on = sim::seconds(5.0),
                                     key_mode keys = key_mode::guess);
/// Adaptive churn (grace riding); compiles to churn_flap(start, 1) in the
/// plain world.
[[nodiscard]] profile adaptive_churn(sim::time_ns start);

/// Shared key pool of one coalition: colluders deposit every key they
/// reconstruct and look up keys for layers they cannot prove themselves.
/// Single-world state (one simulated scheduler), so plain maps keep it
/// deterministic.
///
/// Keys carry a `scope`: the interface identity they are valid at. Without
/// interface keying every key is universal (scope 0, the default), so any
/// colluder's deposit answers any colluder's lookup — the cross-edge
/// channel of paper section 4.2. With interface keying each colluder only
/// ever possesses its own interface's key image, so deposits are tagged
/// with the depositing host and lookups only match keys usable at the
/// requesting host: cross-interface queries miss, and `hits` goes to zero.
class collusion_coordinator {
 public:
  struct counters {
    std::uint64_t deposits = 0;  // keys entered into the pool
    std::uint64_t lookups = 0;   // queries for unprovable layers
    std::uint64_t hits = 0;      // queries answered from the pool
  };

  void deposit(std::int64_t subscribe_slot, int group,
               const crypto::group_key& key, std::uint64_t scope = 0);
  /// Pool key for (slot, group) usable at `scope`; nullptr on miss. Counts
  /// lookups/hits.
  [[nodiscard]] const crypto::group_key* lookup(std::int64_t subscribe_slot,
                                                int group,
                                                std::uint64_t scope = 0);
  [[nodiscard]] const counters& stats() const { return stats_; }

 private:
  /// Keys are useless a few slots after their target slot; deposits prune
  /// anything older than this window so the pool stays O(window x groups).
  static constexpr std::int64_t retain_slots = 8;

  std::map<std::tuple<std::int64_t, int, std::uint64_t>, crypto::group_key>
      keys_;
  counters stats_;
};

/// Everything make_strategy needs from its builder besides the profile:
/// a seed source (called once per strategy that consumes randomness — the
/// call order defines the world's seed chain, so the factory only calls it
/// when the strategy actually needs a stream), the coalition pools, and
/// whether the scenario runs the interface-keying countermeasure (SIGMA
/// strategies must perturb the keys they submit to match the router).
struct build_context {
  std::function<std::uint64_t()> next_seed;
  std::function<collusion_coordinator&(int coalition)> coordinator;
  bool interface_keying = false;
};

/// Compiles a profile into a live strategy for the given protocol world.
/// inflate_once compiles to the exact legacy classes
/// (flid::inflating_plain_strategy / core::misbehaving_sigma_strategy), so
/// ported scenarios reproduce bit-identically.
[[nodiscard]] std::unique_ptr<flid::subscription_strategy> make_strategy(
    protocol proto, const profile& p, const build_context& ctx);

}  // namespace mcc::adversary

#endif  // MCC_ADVERSARY_ADVERSARY_H
