#include "adversary/adversary.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/delta_layered.h"
#include "util/require.h"

namespace mcc::adversary {

// ---------------------------------------------------------------------------
// Names and flag parsing
// ---------------------------------------------------------------------------

const char* strategy_name(strategy_kind k) {
  switch (k) {
    case strategy_kind::honest: return "honest";
    case strategy_kind::inflate_once: return "inflate_once";
    case strategy_kind::pulse_inflate: return "pulse_inflate";
    case strategy_kind::churn_flap: return "churn_flap";
    case strategy_kind::deaf_receiver: return "deaf_receiver";
    case strategy_kind::collusion: return "collusion";
    case strategy_kind::adaptive_pulse: return "adaptive_pulse";
    case strategy_kind::adaptive_churn: return "adaptive_churn";
  }
  return "?";
}

std::optional<strategy_kind> strategy_from_name(const std::string& name) {
  for (const strategy_kind k :
       {strategy_kind::honest, strategy_kind::inflate_once,
        strategy_kind::pulse_inflate, strategy_kind::churn_flap,
        strategy_kind::deaf_receiver, strategy_kind::collusion,
        strategy_kind::adaptive_pulse, strategy_kind::adaptive_churn}) {
    if (name == strategy_name(k)) return k;
  }
  return std::nullopt;
}

const std::vector<strategy_kind>& all_attacks() {
  static const std::vector<strategy_kind> kinds = {
      strategy_kind::inflate_once,  strategy_kind::pulse_inflate,
      strategy_kind::churn_flap,    strategy_kind::deaf_receiver,
      strategy_kind::collusion,     strategy_kind::adaptive_pulse,
      strategy_kind::adaptive_churn};
  return kinds;
}

const char* key_mode_name(key_mode m) {
  switch (m) {
    case key_mode::best_effort: return "best_effort";
    case key_mode::replay: return "replay";
    case key_mode::guess: return "guess";
  }
  return "?";
}

std::optional<key_mode> key_mode_from_name(const std::string& name) {
  for (const key_mode m :
       {key_mode::best_effort, key_mode::replay, key_mode::guess}) {
    if (name == key_mode_name(m)) return m;
  }
  return std::nullopt;
}

key_mode key_mode_from_flag(const std::string& name) {
  const auto m = key_mode_from_name(name);
  if (!m.has_value()) {
    // A command-line typo, not a program invariant: same friendly UX as a
    // bad numeric flag value.
    std::fprintf(stderr,
                 "bad value for --attack-keys: '%s' (expected best_effort, "
                 "replay, or guess)\n",
                 name.c_str());
    std::exit(1);
  }
  return *m;
}

// ---------------------------------------------------------------------------
// Profile factories
// ---------------------------------------------------------------------------

profile honest() { return profile{}; }

profile inflate_once(sim::time_ns start, key_mode keys, int inflate_level) {
  profile p;
  p.kind = strategy_kind::inflate_once;
  p.start = start;
  p.keys = keys;
  p.inflate_level = inflate_level;
  return p;
}

profile pulse_inflate(sim::time_ns start, sim::time_ns on, sim::time_ns off,
                      key_mode keys) {
  profile p;
  p.kind = strategy_kind::pulse_inflate;
  p.start = start;
  p.pulse_on = on;
  p.pulse_off = off;
  p.keys = keys;
  return p;
}

profile churn_flap(sim::time_ns start, int period_slots, int depth) {
  profile p;
  p.kind = strategy_kind::churn_flap;
  p.start = start;
  p.flap_period_slots = period_slots;
  p.flap_depth = depth;
  return p;
}

profile deaf_receiver(sim::time_ns start) {
  profile p;
  p.kind = strategy_kind::deaf_receiver;
  p.start = start;
  return p;
}

profile collusion(sim::time_ns start, int coalition, key_mode keys) {
  profile p;
  p.kind = strategy_kind::collusion;
  p.start = start;
  p.coalition = coalition;
  p.keys = keys;
  return p;
}

profile adaptive_pulse(sim::time_ns start, sim::time_ns on, key_mode keys) {
  profile p;
  p.kind = strategy_kind::adaptive_pulse;
  p.start = start;
  p.pulse_on = on;
  p.keys = keys;
  return p;
}

profile adaptive_churn(sim::time_ns start) {
  profile p;
  p.kind = strategy_kind::adaptive_churn;
  p.start = start;
  return p;
}

// ---------------------------------------------------------------------------
// Collusion coordinator
// ---------------------------------------------------------------------------

void collusion_coordinator::deposit(std::int64_t subscribe_slot, int group,
                                    const crypto::group_key& key,
                                    std::uint64_t scope) {
  ++stats_.deposits;
  keys_[{subscribe_slot, group, scope}] = key;
  // Keys for long-gone slots can never validate again; prune so the pool
  // stays bounded over arbitrarily long runs.
  while (!keys_.empty() &&
         std::get<0>(keys_.begin()->first) < subscribe_slot - retain_slots) {
    keys_.erase(keys_.begin());
  }
}

const crypto::group_key* collusion_coordinator::lookup(
    std::int64_t subscribe_slot, int group, std::uint64_t scope) {
  ++stats_.lookups;
  const auto it = keys_.find({subscribe_slot, group, scope});
  if (it == keys_.end()) return nullptr;
  ++stats_.hits;
  return &it->second;
}

// ---------------------------------------------------------------------------
// Plain-IGMP (FLID-DL) attack strategies
// ---------------------------------------------------------------------------

namespace {

/// Resolved attack ceiling: <= 0 means "all groups".
int ceiling(const flid::flid_receiver& r, int level) {
  return level > 0 ? std::min(level, r.config().num_groups)
                   : r.config().num_groups;
}

/// pulse_inflate over raw IGMP: inflate to the ceiling during on phases,
/// collapse to the minimal layer at each on->off edge, then behave honestly
/// until the next pulse.
class pulse_plain_strategy : public flid::subscription_strategy {
 public:
  pulse_plain_strategy(sim::time_ns start, sim::time_ns on, sim::time_ns off,
                       int level)
      : start_(start), on_(on), off_(off), level_(level) {
    util::require(on > 0 && off > 0, "pulse_inflate: phases must be positive");
  }

  void session_start(flid::flid_receiver& r) override {
    honest_.session_start(r);
  }

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override {
    const sim::time_ns now = r.net().sched().now();
    if (now < start_) return honest_.on_slot(r, s);
    const bool on_phase = (now - start_) % (on_ + off_) < on_;
    if (on_phase) {
      was_on_ = true;
      const int n = ceiling(r, level_);
      for (int g = r.level() + 1; g <= n; ++g) {
        r.membership().join(r.config().group(g));
      }
      // The honest phase may have climbed past a capped ceiling: leave the
      // excess, or those memberships would leak forever (set_local_level
      // alone never signals the network).
      for (int g = r.level(); g > n; --g) {
        r.membership().leave(r.config().group(g));
      }
      r.set_local_level(n);
      return n;  // ignore congestion while the pulse is live
    }
    if (was_on_) {
      // On -> off edge: shed everything at once so the next pulse restarts
      // from a clean congestion window.
      was_on_ = false;
      for (int g = r.level(); g >= 2; --g) {
        r.membership().leave(r.config().group(g));
      }
      r.set_local_level(1);
      return 1;
    }
    return honest_.on_slot(r, s);
  }

 private:
  sim::time_ns start_, on_, off_;
  int level_;
  bool was_on_ = false;
  flid::honest_plain_strategy honest_;
};

/// churn_flap over raw IGMP: alternate every `period` slots between joining
/// up to the flap depth and collapsing to the minimal layer.
class churn_plain_strategy : public flid::subscription_strategy {
 public:
  churn_plain_strategy(sim::time_ns start, int period, int depth)
      : start_(start), period_(std::max(1, period)), depth_(depth) {}

  void session_start(flid::flid_receiver& r) override {
    honest_.session_start(r);
  }

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override {
    if (r.net().sched().now() < start_) return honest_.on_slot(r, s);
    if (first_slot_ < 0) first_slot_ = s.slot;
    const bool up = (s.slot - first_slot_) / period_ % 2 == 0;
    const int n = ceiling(r, depth_);
    if (up && r.level() < n) {
      for (int g = r.level() + 1; g <= n; ++g) {
        r.membership().join(r.config().group(g));
      }
      r.set_local_level(n);
    } else if (!up && r.level() > 1) {
      for (int g = r.level(); g >= 2; --g) {
        r.membership().leave(r.config().group(g));
      }
      r.set_local_level(1);
    }
    return r.level();
  }

 private:
  sim::time_ns start_;
  int period_;
  int depth_;
  std::int64_t first_slot_ = -1;
  flid::honest_plain_strategy honest_;
};

/// deaf_receiver over raw IGMP: keeps taking authorized upgrades but never
/// reacts to congestion and never leaves a group.
class deaf_plain_strategy : public flid::subscription_strategy {
 public:
  explicit deaf_plain_strategy(sim::time_ns start) : start_(start) {}

  void session_start(flid::flid_receiver& r) override {
    honest_.session_start(r);
  }

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override {
    if (r.net().sched().now() < start_) return honest_.on_slot(r, s);
    const int level = r.level();
    if (level < r.config().num_groups && s.upgrade_authorized(level + 1)) {
      r.membership().join(r.config().group(level + 1));
      r.set_local_level(level + 1);
    }
    return r.level();
  }

 private:
  sim::time_ns start_;
  flid::honest_plain_strategy honest_;
};

// ---------------------------------------------------------------------------
// SIGMA (FLID-DS) attack strategies
// ---------------------------------------------------------------------------

/// pulse_inflate against DELTA/SIGMA: the base misbehaving machinery, gated
/// by an on/off schedule instead of a single onset. Off phases run the
/// honest path, which re-proves keys at the entitled level — so every pulse
/// starts from a fresh entitlement and SIGMA's containment clock restarts.
class pulse_sigma_strategy : public core::misbehaving_sigma_strategy {
 public:
  pulse_sigma_strategy(sim::time_ns start, sim::time_ns on, sim::time_ns off,
                       key_mode mode, std::uint64_t seed)
      : misbehaving_sigma_strategy(start, mode, seed), on_(on), off_(off) {
    util::require(on > 0 && off > 0, "pulse_inflate: phases must be positive");
  }

 protected:
  [[nodiscard]] bool attack_active() const override {
    const sim::time_ns now = net_->sched().now();
    if (now < inflate_at()) return false;
    return (now - inflate_at()) % (on_ + off_) < on_;
  }

 private:
  sim::time_ns on_, off_;
};

/// churn_flap against SIGMA: on up phases run the full honest machinery
/// (prove keys, subscribe, climb); on down phases explicitly unsubscribe
/// everything above the minimal layer. Every flap grafts and prunes the
/// tree and allocates/evicts per-interface authorization state.
class churn_sigma_strategy : public core::honest_sigma_strategy {
 public:
  churn_sigma_strategy(sim::time_ns start, int period)
      : start_(start), period_(std::max(1, period)) {}

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override {
    observe_slot(r, s);
    if (net_->sched().now() < start_) return honest_action(r, s);
    if (first_slot_ < 0) first_slot_ = s.slot;
    const bool up = (s.slot - first_slot_) / period_ % 2 == 0;
    if (up) return honest_action(r, s);
    if (r.level() > 1) {
      std::vector<sim::group_addr> dropped;
      for (int g = 2; g <= r.level(); ++g) {
        dropped.push_back(r.config().group(g));
      }
      send_unsubscribe(dropped);
      r.set_local_level(1);
    }
    return r.level();
  }

 private:
  sim::time_ns start_;
  int period_;
  std::int64_t first_slot_ = -1;
};

/// deaf_receiver against SIGMA: proves whatever keys its reception state
/// entitles it to and keeps climbing, but never unsubscribes and never
/// lowers its claimed level. The router's authorization lapse is the only
/// thing that shrinks its delivery.
class deaf_sigma_strategy : public core::honest_sigma_strategy {
 public:
  explicit deaf_sigma_strategy(sim::time_ns start) : start_(start) {}

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override {
    observe_slot(r, s);
    if (net_->sched().now() < start_) return honest_action(r, s);
    const flid::flid_config& cfg = r.config();

    // Reconstruct relative to the prefix actually delivered (the router's
    // grant), like every strategy must for the provable prefix not to
    // shrink each slot.
    int achieved = 0;
    for (int g = 1; g <= cfg.num_groups; ++g) {
      if (s.groups[static_cast<std::size_t>(g)].received == 0) break;
      achieved = g;
    }
    if (achieved == 0) {
      // Cut off. Even a deaf client wants back in; it just never backs off.
      ++stats_.cutoff_slots;
      if (net_->sched().now() - last_session_join_ >= cfg.slot_duration) {
        ++stats_.cutoffs;
        send_session_join();
      }
      return r.level();
    }
    flid::slot_summary eff = s;
    eff.level = achieved;
    eff.congested = false;
    for (int g = 1; g <= achieved; ++g) {
      if (!eff.groups[static_cast<std::size_t>(g)].complete()) {
        eff.congested = true;
        break;
      }
    }
    const core::delta_reconstruction rec = delta_->reconstruct(eff);
    on_keys_reconstructed(s.slot + core::key_lead_slots, rec.keys);
    std::vector<std::pair<sim::group_addr, crypto::group_key>> pairs;
    pairs.reserve(rec.keys.size());
    for (const auto& [g, key] : rec.keys) {
      pairs.emplace_back(cfg.group(g), maybe_perturb(key));
    }
    send_subscribe(s.slot + core::key_lead_slots, pairs);

    // Climb when entitled, never descend, never unsubscribe.
    const int target = std::max(r.level(), rec.next_level);
    r.set_local_level(target);
    return target;
  }

 private:
  sim::time_ns start_;
};

/// collusion against SIGMA: the misbehaving machinery with the coalition's
/// key pool as a side channel — every reconstruction is deposited, and
/// layers beyond the own provable prefix are backed by pool keys proved by
/// a better-placed colluder (paper section 4.2's key-sharing attack).
///
/// Under interface keying a colluder only ever possesses its own
/// interface's key image (the raw key is never submittable anywhere), so
/// deposits carry the perturbed key tagged with the depositing host and
/// lookups are scoped to the requesting host: cross-interface queries miss
/// and the side channel yields nothing (pool hits drop to zero).
class collusion_sigma_strategy : public core::misbehaving_sigma_strategy {
 public:
  collusion_sigma_strategy(sim::time_ns start, key_mode mode,
                           std::uint64_t seed, collusion_coordinator& pool)
      : misbehaving_sigma_strategy(start, mode, seed), pool_(&pool) {}

 protected:
  void on_keys_reconstructed(
      std::int64_t subscribe_slot,
      const std::vector<std::pair<int, crypto::group_key>>& keys) override {
    for (const auto& [g, key] : keys) {
      pool_->deposit(subscribe_slot, g, maybe_perturb(key), scope());
    }
  }

  bool sidechannel_keys(
      int group, std::int64_t subscribe_slot, const flid::flid_config& cfg,
      std::vector<std::pair<sim::group_addr, crypto::group_key>>& pairs)
      override {
    const crypto::group_key* key =
        pool_->lookup(subscribe_slot, group, scope());
    if (key == nullptr) return false;
    pairs.emplace_back(cfg.group(group), *key);
    return true;
  }

 private:
  /// Interface identity the possessed keys are valid at: universal (0)
  /// without the countermeasure, the attached host under keying.
  [[nodiscard]] std::uint64_t scope() const {
    return interface_keying() ? static_cast<std::uint64_t>(receiver_->host())
                              : 0;
  }

  collusion_coordinator* pool_;
};

/// adaptive_pulse against SIGMA: the misbehaving machinery with phases tuned
/// by the slot_feedback hook instead of a fixed schedule. One probe pulse
/// measures the enforcement lag (attack onset -> observed claw-back of the
/// granted prefix); every later pulse attacks for exactly that long and
/// retreats to the honest machinery before punishment lands, returning as
/// soon as key_lead_slots clean slots have re-proven the entitlement.
class adaptive_pulse_sigma_strategy : public core::misbehaving_sigma_strategy {
 public:
  adaptive_pulse_sigma_strategy(sim::time_ns start, sim::time_ns max_probe,
                                key_mode mode, std::uint64_t seed)
      : misbehaving_sigma_strategy(start, mode, seed),
        max_probe_(max_probe) {
    util::require(max_probe > 0,
                  "adaptive_pulse: probe duration must be positive");
  }

 protected:
  [[nodiscard]] bool attack_active() const override {
    return net_->sched().now() >= inflate_at() && on_;
  }

  void on_feedback(const core::slot_feedback& fb) override {
    if (fb.now < inflate_at()) {
      entitled_ = fb.granted;  // honest-phase baseline: the earned level
      return;
    }
    if (phase_start_ < 0) phase_start_ = fb.now;  // first attacking slot
    const sim::time_ns in_phase = fb.now - phase_start_;
    if (on_) {
      peak_ = std::max(peak_, fb.granted);
      const bool clawed_back =
          fb.granted == 0 || (peak_ > entitled_ && fb.granted <= entitled_);
      if (clawed_back) {
        // The router reined the pulse in: that delay IS the enforcement
        // lag. Clamp to >= 1 ns — a claw-back on the very first attacking
        // slot would store 0, which the "not measured yet" sentinel below
        // could not tell apart from the initial state.
        observed_lag_ = std::max<sim::time_ns>(1, in_phase);
        switch_phase(fb.now, false);
      } else if (observed_lag_ > 0 && in_phase >= observed_lag_) {
        // Lag known from an earlier pulse: retreat before punishment.
        switch_phase(fb.now, false);
      } else if (in_phase >= max_probe_) {
        // The pulse never paid within the probe budget; stop burning.
        observed_lag_ = std::max<sim::time_ns>(1, in_phase);
        switch_phase(fb.now, false);
      }
    } else {
      entitled_ = fb.granted;  // entitlement is whatever flows while honest
      recovered_slots_ = fb.granted > 0 ? recovered_slots_ + 1 : 0;
      // Keys harvested from a clean slot guard slot + key_lead_slots: once
      // that many clean slots passed, the next pulse starts from a fresh
      // entitlement (the property pulse attacks exist to exploit).
      if (recovered_slots_ > core::key_lead_slots) switch_phase(fb.now, true);
    }
  }

 private:
  void switch_phase(sim::time_ns now, bool on) {
    on_ = on;
    phase_start_ = now;
    peak_ = 0;
    recovered_slots_ = 0;
  }

  sim::time_ns max_probe_;
  bool on_ = true;  // the first attacking phase is the probe
  sim::time_ns phase_start_ = -1;
  sim::time_ns observed_lag_ = 0;  // 0 = not measured yet
  int entitled_ = 0;
  int peak_ = 0;
  int recovered_slots_ = 0;
};

/// adaptive_churn against SIGMA: a free-rider synchronized to the two-slot
/// keyless grace of section 3.2.2. Cycle: session-join (grace: the minimal
/// group flows for the first-packet slot plus key_lead_slots complete
/// slots), consume exactly that window, then unsubscribe — which used to wipe
/// the interface state at the router, including the pending probation — and
/// rejoin for a fresh window. The receiver never proves a single key yet
/// keeps receiving; against a memoryless router the only thing bounding it is
/// the minimal group's rate and the dead slot between cycles.
///
/// Against router probation memory the wipe no longer clears the debt: a
/// rejoin within the window gets no fresh grace, and repeated keyless
/// rejoins buy geometrically escalating cutoffs. The strategy observes the
/// closed window through slot_feedback — a session-join that produces no
/// granted packets within a few slots — and falls back to waiting it out
/// with exponential join backoff, so the arms race re-runs honestly instead
/// of hammering refused joins.
class adaptive_churn_sigma_strategy : public core::honest_sigma_strategy {
 public:
  explicit adaptive_churn_sigma_strategy(sim::time_ns start) : start_(start) {}

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override {
    const core::slot_feedback fb = observe_slot(r, s);
    if (fb.now < start_) return honest_action(r, s);
    const flid::flid_config& cfg = r.config();
    if (!attacking_) {
      // Entering attack mode: shed everything above the minimal group and
      // stop proving keys — from here only keyless admission is used.
      attacking_ = true;
      if (r.level() > 1) {
        std::vector<sim::group_addr> dropped;
        for (int g = 2; g <= r.level(); ++g) dropped.push_back(cfg.group(g));
        send_unsubscribe(dropped);
        r.set_local_level(1);
      }
      grace_slots_ = 0;
    }
    if (fb.granted > 0) {
      ++grace_slots_;
      joined_ = false;
      backoff_slots_ = 0;  // the join produced data: the window is open
      if (grace_slots_ > core::key_lead_slots) {
        // Grace spent: the next packet would be denied and convert the
        // probation into a >= one-slot block. Wipe the state instead.
        send_unsubscribe({cfg.group(1)});
        grace_slots_ = 0;
      }
    } else {
      ++stats_.cutoff_slots;
      grace_slots_ = 0;
      if (joined_ && ++dead_slots_since_join_ >= unproductive_join_slots) {
        // The join bought nothing for several slots: the router remembers the
        // probation debt (window closed). Wait it out, doubling each time.
        joined_ = false;
        backoff_slots_ = std::min(std::max(1, backoff_slots_ * 2), 64);
        wait_slots_ = backoff_slots_;
      }
      if (!joined_ && wait_slots_ > 0) {
        --wait_slots_;
      } else if (fb.now - last_session_join_ >= cfg.slot_duration) {
        // Dead slot between grace windows: request fresh keyless admission,
        // rate-limited like the honest path.
        send_session_join();
        joined_ = true;
        dead_slots_since_join_ = 0;
      }
    }
    return r.level();
  }

 private:
  /// Dead slots after a join before the strategy concludes the window is
  /// closed (an open window yields granted packets within a slot or two).
  static constexpr int unproductive_join_slots = 3;

  sim::time_ns start_;
  bool attacking_ = false;
  int grace_slots_ = 0;
  bool joined_ = false;            // a join is outstanding, outcome unknown
  int dead_slots_since_join_ = 0;  // granted == 0 slots since that join
  int backoff_slots_ = 0;          // doubles per unproductive join, cap 64
  int wait_slots_ = 0;             // remaining enforced dead time
};

}  // namespace

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<flid::subscription_strategy> make_strategy(
    protocol proto, const profile& p, const build_context& ctx) {
  // The seed source is consulted only for strategies that consume
  // randomness, and exactly once each — the call order defines the world's
  // seed chain, so ported scenarios keep their historical streams.
  const auto seed = [&ctx] {
    util::require(static_cast<bool>(ctx.next_seed),
                  "adversary::make_strategy: seed source required");
    return ctx.next_seed();
  };
  if (proto == protocol::plain) {
    switch (p.kind) {
      case strategy_kind::honest:
        return std::make_unique<flid::honest_plain_strategy>();
      case strategy_kind::inflate_once:
        return std::make_unique<flid::inflating_plain_strategy>(
            p.start, p.inflate_level);
      case strategy_kind::pulse_inflate:
        return std::make_unique<pulse_plain_strategy>(
            p.start, p.pulse_on, p.pulse_off, p.inflate_level);
      case strategy_kind::churn_flap:
        return std::make_unique<churn_plain_strategy>(
            p.start, p.flap_period_slots, p.flap_depth);
      case strategy_kind::deaf_receiver:
        return std::make_unique<deaf_plain_strategy>(p.start);
      case strategy_kind::collusion:
        // No keys exist in the plain world; each colluder degenerates to an
        // independent inflater.
        return std::make_unique<flid::inflating_plain_strategy>(
            p.start, p.inflate_level);
      case strategy_kind::adaptive_pulse:
        // The adaptation targets SIGMA's enforcement signals (claw-back,
        // grace); the plain router grants every join, so there is nothing
        // to measure — degenerate to the scripted counterparts.
        return std::make_unique<pulse_plain_strategy>(
            p.start, p.pulse_on, p.pulse_off, p.inflate_level);
      case strategy_kind::adaptive_churn:
        return std::make_unique<churn_plain_strategy>(p.start, 1, 0);
    }
  } else {
    std::unique_ptr<core::honest_sigma_strategy> s;
    switch (p.kind) {
      case strategy_kind::honest:
        s = std::make_unique<core::honest_sigma_strategy>();
        break;
      case strategy_kind::inflate_once:
        s = std::make_unique<core::misbehaving_sigma_strategy>(
            p.start, p.keys, seed());
        break;
      case strategy_kind::pulse_inflate:
        s = std::make_unique<pulse_sigma_strategy>(
            p.start, p.pulse_on, p.pulse_off, p.keys, seed());
        break;
      case strategy_kind::churn_flap:
        s = std::make_unique<churn_sigma_strategy>(p.start,
                                                   p.flap_period_slots);
        break;
      case strategy_kind::deaf_receiver:
        s = std::make_unique<deaf_sigma_strategy>(p.start);
        break;
      case strategy_kind::collusion: {
        util::require(static_cast<bool>(ctx.coordinator),
                      "adversary::make_strategy: collusion needs a "
                      "coordinator source");
        collusion_coordinator& pool = ctx.coordinator(p.coalition);
        s = std::make_unique<collusion_sigma_strategy>(p.start, p.keys,
                                                       seed(), pool);
        break;
      }
      case strategy_kind::adaptive_pulse:
        s = std::make_unique<adaptive_pulse_sigma_strategy>(
            p.start, p.pulse_on, p.keys, seed());
        break;
      case strategy_kind::adaptive_churn:
        s = std::make_unique<adaptive_churn_sigma_strategy>(p.start);
        break;
    }
    if (s != nullptr) {
      // Every SIGMA strategy must agree with the scenario's router setting:
      // under interface keying, submitted keys carry the per-interface
      // perturbation (honest and attacking alike).
      s->set_interface_keying(ctx.interface_keying);
      return s;
    }
  }
  util::require(false, "adversary::make_strategy: unknown strategy kind",
                static_cast<int>(p.kind));
  return nullptr;
}

}  // namespace mcc::adversary
