// Containment metrics: how well the protocol held a misbehaving receiver.
//
// A containment_report is computed per attacker from throughput monitors
// after a run:
//
//   * attacker goodput share — the attacker's post-attack goodput as a share
//     of everything measured (attacker + honest flows). Under working
//     enforcement this stays near the fair share; under Figure-1-style
//     theft it approaches 1.
//   * honest-flow damage ratio — how much of the honest flows' pre-attack
//     goodput the attack destroyed (0 = unharmed, 1 = starved out).
//   * time-to-containment — how long after the attack onset the attacker's
//     goodput was last seen above its containment bound (bound_factor x the
//     honest per-flow mean). 0 means the attack never paid at all; -1 means
//     the attacker was still above the bound at the horizon (not
//     contained).
//
// All three are pure functions of recorded monitors, so they apply to any
// strategy x topology x qdisc cell of the attack matrix.
#ifndef MCC_ADVERSARY_CONTAINMENT_H
#define MCC_ADVERSARY_CONTAINMENT_H

#include <vector>

#include "sim/stats.h"
#include "sim/time.h"

namespace mcc::adversary {

struct containment_config {
  sim::time_ns attack_start = 0;
  sim::time_ns horizon = 0;
  /// Transient skipped after the onset before "after" means are taken.
  sim::time_ns settle = sim::seconds(10.0);
  /// Pre-attack reference window: [attack_start - pre, attack_start).
  sim::time_ns pre = sim::seconds(20.0);
  /// Resolution of the time-to-containment scan, and the smoothing window
  /// each scanned rate is averaged over (slot/layer quantization makes
  /// 1-second raw bins flicker).
  sim::time_ns bin = sim::seconds(1.0);
  sim::time_ns smooth = sim::seconds(5.0);
  /// Contained = attacker goodput at or below bound_factor x the reference
  /// per-flow mean. Layers are spaced by a 1.5x rate multiplier, so the
  /// default grants one layer of quantization headroom.
  double bound_factor = 1.6;
  /// Reference floor so a starved honest set cannot make the bound vacuous.
  double floor_kbps = 50.0;
};

struct containment_report {
  double attacker_kbps = 0.0;       // mean over [start + settle, horizon)
  double honest_kbps = 0.0;         // per-flow honest mean, same window
  double honest_before_kbps = 0.0;  // per-flow honest mean before the onset
  double attacker_share = 0.0;      // attacker / (attacker + all honest)
  double honest_damage = 0.0;       // 1 - after/before, clamped to [0, 1]
  double containment_bound_kbps = 0.0;
  double time_to_containment_s = -1.0;  // -1 = not contained by horizon
  bool contained = false;
};

/// Computes the report for one attacker against a set of honest monitors
/// (multicast receivers and/or unicast sinks). Requires
/// attack_start + settle < horizon and at least one honest monitor. The
/// containment bound is referenced to the honest per-flow mean.
[[nodiscard]] containment_report measure_containment(
    const sim::throughput_monitor& attacker,
    const std::vector<const sim::throughput_monitor*>& honest,
    const containment_config& cfg);

/// Same, with an explicit reference set for the containment bound: `honest`
/// still defines share and damage, but the bound tracks the per-flow mean
/// of `reference` (typically the attacker's honest same-session peers,
/// whose layered rate is the natural yardstick — unicast victims run a
/// different control law).
[[nodiscard]] containment_report measure_containment(
    const sim::throughput_monitor& attacker,
    const std::vector<const sim::throughput_monitor*>& honest,
    const std::vector<const sim::throughput_monitor*>& reference,
    const containment_config& cfg);

}  // namespace mcc::adversary

#endif  // MCC_ADVERSARY_CONTAINMENT_H
