// Containment metrics: how well the protocol held a misbehaving receiver.
//
// A containment_report is computed per attacker from throughput monitors
// after a run:
//
//   * attacker goodput share — the attacker's post-attack goodput as a share
//     of everything measured (attacker + honest flows). Under working
//     enforcement this stays near the fair share; under Figure-1-style
//     theft it approaches 1.
//   * honest-flow damage ratio — how much of the honest flows' pre-attack
//     goodput the attack destroyed (0 = unharmed, 1 = starved out).
//   * time-to-containment — how long after the attack onset the attacker's
//     goodput was last seen above its containment bound (bound_factor x the
//     honest per-flow mean). 0 means the attack never paid at all; -1 means
//     the attacker was still above the bound at the horizon (not
//     contained).
//
// All three are pure functions of recorded monitors, so they apply to any
// strategy x topology x qdisc cell of the attack matrix.
//
// The damage side is only half of an attack's economics: attacker_cost adds
// the attacker's own spend — control messages sent, key submissions that
// could never validate, and slots spent cut off — so the matrix can rank
// strategies by profitability (goodput gained per unit of effort), not just
// by how long the protocol took to rein them in. Cost is collected from the
// receiver's strategy/membership counters by measure_cost and folded into a
// containment_report by attach_cost.
#ifndef MCC_ADVERSARY_CONTAINMENT_H
#define MCC_ADVERSARY_CONTAINMENT_H

#include <cstdint>
#include <vector>

#include "core/sigma_router.h"
#include "flid/flid_receiver.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace mcc::adversary {

struct containment_config {
  sim::time_ns attack_start = 0;
  sim::time_ns horizon = 0;
  /// Transient skipped after the onset before "after" means are taken.
  sim::time_ns settle = sim::seconds(10.0);
  /// Pre-attack reference window: [attack_start - pre, attack_start).
  sim::time_ns pre = sim::seconds(20.0);
  /// Resolution of the time-to-containment scan, and the smoothing window
  /// each scanned rate is averaged over (slot/layer quantization makes
  /// 1-second raw bins flicker).
  sim::time_ns bin = sim::seconds(1.0);
  sim::time_ns smooth = sim::seconds(5.0);
  /// Contained = attacker goodput at or below bound_factor x the reference
  /// per-flow mean. Layers are spaced by a 1.5x rate multiplier, so the
  /// default grants one layer of quantization headroom.
  double bound_factor = 1.6;
  /// Reference floor so a starved honest set cannot make the bound vacuous.
  double floor_kbps = 50.0;
};

/// The attacker's own spend over a run, attributable to one receiver.
struct attacker_cost {
  /// Control messages sent: SIGMA subscribes/unsubscribes/session-joins and
  /// retransmits, or IGMP joins/leaves in the plain world.
  std::uint64_t ctrl_msgs = 0;
  /// Wire bytes of those messages. Messages are not equal: a guessing flood
  /// stuffs dozens of key pairs into each subscribe while a sparse replay
  /// rides nearly free, so per-byte profitability is the ranking that makes
  /// floods look as expensive as they are.
  std::uint64_t ctrl_bytes = 0;
  /// Key submissions that can never validate: random guesses plus stale
  /// replays (section 4.2's guessing attack, priced).
  std::uint64_t useless_keys = 0;
  /// Evaluated slots in which the router delivered nothing — time served
  /// under probation blocks and stale prunes.
  std::uint64_t cutoff_slots = 0;
};

struct containment_report {
  double attacker_kbps = 0.0;       // mean over [start + settle, horizon)
  double honest_kbps = 0.0;         // per-flow honest mean, same window
  double honest_before_kbps = 0.0;  // per-flow honest mean before the onset
  double attacker_share = 0.0;      // attacker / (attacker + all honest)
  double honest_damage = 0.0;       // 1 - after/before, clamped to [0, 1]
  double containment_bound_kbps = 0.0;
  double time_to_containment_s = -1.0;  // -1 = not contained by horizon
  bool contained = false;
  /// Attacker-side spend (zeroed until attach_cost is called).
  attacker_cost cost{};
  /// Profitability: attacker goodput per control message sent,
  /// attacker_kbps / max(1, ctrl_msgs). High = a cheap attack (whether or
  /// not it was contained); near zero = the attacker burned control-plane
  /// effort for nothing. Set by attach_cost.
  double profit_kbps_per_msg = 0.0;
  /// Profitability per control-plane kilobyte, attacker_kbps / max(1 KB,
  /// ctrl_bytes / 1024). The byte-priced ranking: key-stuffed guessing
  /// floods pay per pair and rank below sparse replays here even when their
  /// message counts match. Set by attach_cost.
  double profit_kbps_per_kb = 0.0;
  /// False-positive price of router probation memory at this cell's edge:
  /// the fraction of admission attempts that hit a remembered debt —
  /// (memory_refusals + memory_inherits) / (session_joins + memory_refusals).
  /// On an honest edge this is the honest leave/rejoin false-positive block
  /// rate the ROADMAP insisted on pricing; 0 while the memory is off. Set by
  /// attach_router_memory.
  double fp_block_rate = 0.0;
};

/// Computes the report for one attacker against a set of honest monitors
/// (multicast receivers and/or unicast sinks). Requires
/// attack_start + settle < horizon and at least one honest monitor. The
/// containment bound is referenced to the honest per-flow mean.
[[nodiscard]] containment_report measure_containment(
    const sim::throughput_monitor& attacker,
    const std::vector<const sim::throughput_monitor*>& honest,
    const containment_config& cfg);

/// Same, with an explicit reference set for the containment bound: `honest`
/// still defines share and damage, but the bound tracks the per-flow mean
/// of `reference` (typically the attacker's honest same-session peers,
/// whose layered rate is the natural yardstick — unicast victims run a
/// different control law).
[[nodiscard]] containment_report measure_containment(
    const sim::throughput_monitor& attacker,
    const std::vector<const sim::throughput_monitor*>& honest,
    const std::vector<const sim::throughput_monitor*>& reference,
    const containment_config& cfg);

/// Collects the receiver's attributable spend from its strategy and
/// membership counters: SIGMA strategies report their message/key/cutoff
/// counters, plain-world strategies their IGMP client's join/leave count.
/// Works for honest receivers too (their spend is the baseline attackers
/// are compared against).
[[nodiscard]] attacker_cost measure_cost(const flid::flid_receiver& r);

/// Folds a cost into a report and derives profit_kbps_per_msg and
/// profit_kbps_per_kb.
void attach_cost(containment_report& rep, const attacker_cost& cost);

/// The probation-memory hit rate of one edge router's counters:
/// (memory_refusals + memory_inherits) / (session_joins + memory_refusals),
/// 0 when the edge saw no admission attempts (or the memory is off).
[[nodiscard]] double memory_block_rate(
    const core::sigma_router_agent::counters& edge);

/// Folds an edge router's probation-memory counters into a report's
/// fp_block_rate.
void attach_router_memory(containment_report& rep,
                          const core::sigma_router_agent::counters& edge);

}  // namespace mcc::adversary

#endif  // MCC_ADVERSARY_CONTAINMENT_H
