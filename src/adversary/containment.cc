#include "adversary/containment.h"

#include <algorithm>

#include "core/flid_ds.h"
#include "util/require.h"

namespace mcc::adversary {

namespace {

double per_flow_mean(const std::vector<const sim::throughput_monitor*>& flows,
                     sim::time_ns t0, sim::time_ns t1) {
  double sum = 0.0;
  for (const sim::throughput_monitor* m : flows) {
    sum += m->average_kbps(t0, t1);
  }
  return sum / static_cast<double>(flows.size());
}

}  // namespace

containment_report measure_containment(
    const sim::throughput_monitor& attacker,
    const std::vector<const sim::throughput_monitor*>& honest,
    const containment_config& cfg) {
  return measure_containment(attacker, honest, honest, cfg);
}

containment_report measure_containment(
    const sim::throughput_monitor& attacker,
    const std::vector<const sim::throughput_monitor*>& honest,
    const std::vector<const sim::throughput_monitor*>& reference,
    const containment_config& cfg) {
  util::require(!honest.empty(), "measure_containment: no honest monitors");
  util::require(!reference.empty(),
                "measure_containment: no reference monitors");
  util::require(cfg.bin > 0, "measure_containment: bad bin");
  const sim::time_ns after0 = cfg.attack_start + cfg.settle;
  util::require(after0 < cfg.horizon,
                "measure_containment: settle window swallows the run");

  containment_report rep;
  rep.attacker_kbps = attacker.average_kbps(after0, cfg.horizon);

  double honest_sum = 0.0;
  for (const sim::throughput_monitor* m : honest) {
    honest_sum += m->average_kbps(after0, cfg.horizon);
  }
  rep.honest_kbps = honest_sum / static_cast<double>(honest.size());
  const double total = rep.attacker_kbps + honest_sum;
  rep.attacker_share = total > 0.0 ? rep.attacker_kbps / total : 0.0;

  const sim::time_ns before0 =
      std::max<sim::time_ns>(0, cfg.attack_start - cfg.pre);
  if (before0 < cfg.attack_start) {
    rep.honest_before_kbps =
        per_flow_mean(honest, before0, cfg.attack_start);
    if (rep.honest_before_kbps > 0.0) {
      rep.honest_damage = std::clamp(
          1.0 - rep.honest_kbps / rep.honest_before_kbps, 0.0, 1.0);
    }
  }

  // Time-to-containment: the end of the last scan bin whose (smoothed)
  // attacker goodput exceeded the bound. No such bin = the attack never
  // paid (0); an offending final bin = not contained (-1).
  rep.containment_bound_kbps =
      cfg.bound_factor *
      std::max(per_flow_mean(reference, after0, cfg.horizon), cfg.floor_kbps);
  const sim::time_ns half = std::max<sim::time_ns>(cfg.smooth / 2, cfg.bin / 2);
  sim::time_ns contained_at = cfg.attack_start;
  bool tail_offends = false;
  for (sim::time_ns t = cfg.attack_start; t < cfg.horizon; t += cfg.bin) {
    const sim::time_ns mid = t + cfg.bin / 2;
    const sim::time_ns w0 = std::max(cfg.attack_start, mid - half);
    const sim::time_ns w1 = std::min(cfg.horizon, mid + half);
    if (w0 >= w1) continue;
    if (attacker.average_kbps(w0, w1) > rep.containment_bound_kbps) {
      const sim::time_ns bin_end = std::min(t + cfg.bin, cfg.horizon);
      contained_at = bin_end;
      tail_offends = bin_end >= cfg.horizon;
    }
  }
  rep.contained = !tail_offends;
  if (rep.contained) {
    rep.time_to_containment_s =
        sim::to_seconds(contained_at - cfg.attack_start);
  }
  return rep;
}

attacker_cost measure_cost(const flid::flid_receiver& r) {
  attacker_cost cost;
  if (const auto* sigma =
          dynamic_cast<const core::honest_sigma_strategy*>(&r.strategy())) {
    const auto& st = sigma->stats();
    cost.ctrl_msgs = st.subscribes + st.unsubscribes + st.session_joins +
                     st.retransmits;
    cost.ctrl_bytes = st.ctrl_bytes;
    cost.cutoff_slots = st.cutoff_slots;
    if (const auto* mis =
            dynamic_cast<const core::misbehaving_sigma_strategy*>(sigma)) {
      const auto& atk = mis->attack_stats();
      // Guesses and stale replays can never validate (keys are per-slot and
      // one-way); pool keys are excluded — with keying off they DO validate,
      // which is the whole collusion attack.
      cost.useless_keys = atk.guessed_keys + atk.replayed_keys;
    }
    return cost;
  }
  // Plain world: the only control plane a strategy drives is its IGMP
  // client; no keys exist, and the router honours every join, so keys and
  // cutoffs cost nothing.
  const auto& m = r.membership().stats();
  cost.ctrl_msgs = m.joins + m.leaves;
  cost.ctrl_bytes = m.bytes;
  return cost;
}

void attach_cost(containment_report& rep, const attacker_cost& cost) {
  rep.cost = cost;
  rep.profit_kbps_per_msg =
      rep.attacker_kbps /
      static_cast<double>(std::max<std::uint64_t>(1, cost.ctrl_msgs));
  rep.profit_kbps_per_kb =
      rep.attacker_kbps /
      std::max(1.0, static_cast<double>(cost.ctrl_bytes) / 1024.0);
}

double memory_block_rate(const core::sigma_router_agent::counters& edge) {
  const std::uint64_t hits = edge.memory_refusals + edge.memory_inherits;
  const std::uint64_t attempts = edge.session_joins + edge.memory_refusals;
  if (attempts == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(attempts);
}

void attach_router_memory(containment_report& rep,
                          const core::sigma_router_agent::counters& edge) {
  rep.fp_block_rate = memory_block_rate(edge);
}

}  // namespace mcc::adversary
