#include "util/flags.h"

#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "util/require.h"

namespace mcc::util {

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    out.push_back(
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

namespace {

/// Whole-string integer parse; nullopt on any trailing garbage.
std::optional<std::int64_t> parse_i64(const std::string& s) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> parse_f64(const std::string& s) {
  // std::stod accepts "nan", "inf", and hexfloats ("0x12"); none of them is
  // a sane simulation parameter, so reject them up front.
  if (s.find_first_of("xX") != std::string::npos) return std::nullopt;
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size() || !std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

flag_set::flag_set(std::string program_description)
    : description_(std::move(program_description)) {}

void flag_set::add(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  require(!entries_.contains(name), "duplicate flag", name);
  entry e{default_value, default_value, help, kind::other};
  // An integer-looking default still marks the flag merely numeric: many
  // benches declare "--duration 120" but read it with f64(), so "12.5" must
  // stay a valid value.
  if (parse_f64(default_value).has_value()) e.k = kind::numeric;
  entries_[name] = std::move(e);
}

namespace {

std::string join_allowed(const std::vector<std::string>& allowed) {
  std::string out;
  for (const std::string& a : allowed) {
    if (!out.empty()) out += ", ";
    out += a;
  }
  return out;
}

bool enum_value_ok(const std::vector<std::string>& allowed, bool csv_list,
                   const std::string& value) {
  const auto ok_one = [&](const std::string& v) {
    for (const std::string& a : allowed) {
      if (v == a) return true;
    }
    return false;
  };
  if (!csv_list) return ok_one(value);
  for (const std::string& part : split_csv(value)) {
    if (!ok_one(part)) return false;
  }
  return true;
}

}  // namespace

void flag_set::add_enum(const std::string& name,
                        const std::string& default_value,
                        const std::string& help,
                        std::vector<std::string> allowed, bool csv_list) {
  require(!entries_.contains(name), "duplicate flag", name);
  require(!allowed.empty(), "add_enum: empty allowed set", name);
  entry e{default_value, default_value, help, kind::enumerated,
          std::move(allowed), csv_list};
  require(enum_value_ok(e.allowed, e.csv_list, default_value),
          "add_enum: default not in allowed set", name);
  entries_[name] = std::move(e);
}

bool flag_set::set_value(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  require(it != entries_.end(), "set_value: undeclared flag", name);
  entry& e = it->second;
  if (e.k == kind::numeric && !parse_f64(value).has_value()) {
    std::fprintf(stderr, "bad value for --%s: '%s' (expected a number)\n",
                 name.c_str(), value.c_str());
    return false;
  }
  if (e.k == kind::enumerated &&
      !enum_value_ok(e.allowed, e.csv_list, value)) {
    std::fprintf(stderr, "bad value for --%s: '%s' (expected one of %s%s)\n",
                 name.c_str(), value.c_str(),
                 join_allowed(e.allowed).c_str(),
                 e.csv_list ? ", or a comma-separated list of them" : "");
    return false;
  }
  e.value = value;  // repeated flags are last-wins
  return true;
}

bool flag_set::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name;
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      auto it = entries_.find(name);
      if (it == entries_.end()) {
        std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
        print_usage();
        return false;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        print_usage();
        return false;
      }
      value = argv[++i];
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      print_usage();
      return false;
    }
    if (!set_value(name, value)) {
      print_usage();
      return false;
    }
  }
  return true;
}

std::string flag_set::str(const std::string& name) const {
  auto it = entries_.find(name);
  require(it != entries_.end(), "undeclared flag", name);
  return it->second.value;
}

std::int64_t flag_set::i64(const std::string& name) const {
  const std::string v = str(name);
  if (const auto parsed = parse_i64(v)) return *parsed;
  // Accept integral spellings like "1e6" or "250.0"; reject "2.5".
  const auto real = parse_f64(v);
  require(real.has_value() && *real == std::trunc(*real) &&
              *real >= -9.2e18 && *real <= 9.2e18,
          "bad value for --" + name + " (expected an integer)", v);
  return static_cast<std::int64_t>(*real);
}

double flag_set::f64(const std::string& name) const {
  const std::string v = str(name);
  const auto parsed = parse_f64(v);
  require(parsed.has_value(), "bad value for --" + name, v);
  return *parsed;
}

bool flag_set::boolean(const std::string& name) const {
  auto v = str(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

void flag_set::print_usage() const {
  if (!description_.empty()) std::fprintf(stderr, "%s\n", description_.c_str());
  std::fprintf(stderr, "flags:\n");
  for (const auto& [name, e] : entries_) {
    if (e.k == kind::enumerated) {
      std::fprintf(stderr, "  --%s (default: %s)  %s [one of: %s]\n",
                   name.c_str(), e.default_value.c_str(), e.help.c_str(),
                   join_allowed(e.allowed).c_str());
    } else {
      std::fprintf(stderr, "  --%s (default: %s)  %s\n", name.c_str(),
                   e.default_value.c_str(), e.help.c_str());
    }
  }
}

}  // namespace mcc::util
