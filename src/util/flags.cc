#include "util/flags.h"

#include <cstdio>
#include <stdexcept>

#include "util/require.h"

namespace mcc::util {

flag_set::flag_set(std::string program_description)
    : description_(std::move(program_description)) {}

void flag_set::add(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  require(!entries_.contains(name), "duplicate flag", name);
  entries_[name] = entry{default_value, default_value, help};
}

bool flag_set::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name;
    std::string value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      name = arg.substr(2);
      auto it = entries_.find(name);
      if (it == entries_.end()) {
        std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
        print_usage();
        return false;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        print_usage();
        return false;
      }
      value = argv[++i];
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      print_usage();
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string flag_set::str(const std::string& name) const {
  auto it = entries_.find(name);
  require(it != entries_.end(), "undeclared flag", name);
  return it->second.value;
}

std::int64_t flag_set::i64(const std::string& name) const {
  return std::stoll(str(name));
}

double flag_set::f64(const std::string& name) const {
  return std::stod(str(name));
}

bool flag_set::boolean(const std::string& name) const {
  auto v = str(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

void flag_set::print_usage() const {
  if (!description_.empty()) std::fprintf(stderr, "%s\n", description_.c_str());
  std::fprintf(stderr, "flags:\n");
  for (const auto& [name, e] : entries_) {
    std::fprintf(stderr, "  --%s (default: %s)  %s\n", name.c_str(),
                 e.default_value.c_str(), e.help.c_str());
  }
}

}  // namespace mcc::util
