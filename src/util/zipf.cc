#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace mcc::util {

zipf_sampler::zipf_sampler(int n, double s) : s_(s) {
  require(n >= 1, "zipf_sampler: need at least one rank", n);
  require(s >= 0.0, "zipf_sampler: negative exponent", s);
  cdf_.resize(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (int k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    cdf_[static_cast<std::size_t>(k - 1)] = acc;
  }
  // Normalize in place; pin the last entry to exactly 1 so u -> rank is
  // total even when the division rounds the tail just below 1.
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

int zipf_sampler::sample(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = it == cdf_.end() ? cdf_.size() - 1
                                    : static_cast<std::size_t>(it - cdf_.begin());
  return static_cast<int>(idx) + 1;
}

double zipf_sampler::pmf(int k) const {
  require(k >= 1 && k <= n(), "zipf_sampler::pmf: rank out of range", k);
  const double hi = cdf_[static_cast<std::size_t>(k - 1)];
  const double lo = k == 1 ? 0.0 : cdf_[static_cast<std::size_t>(k - 2)];
  return hi - lo;
}

}  // namespace mcc::util
