// Invariant checking helpers (always on, including release builds).
//
// The simulator is deterministic, so a violated invariant is a programming
// error that should surface immediately rather than corrupt an experiment.
#ifndef MCC_UTIL_REQUIRE_H
#define MCC_UTIL_REQUIRE_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcc::util {

/// Thrown when a checked invariant fails.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Checks a precondition/invariant; throws invariant_error on failure.
inline void require(bool condition, const std::string& what) {
  if (!condition) throw invariant_error(what);
}

/// require() with value context appended to the message.
template <typename T>
void require(bool condition, const std::string& what, const T& context) {
  if (!condition) {
    std::ostringstream os;
    os << what << " (" << context << ")";
    throw invariant_error(os.str());
  }
}

}  // namespace mcc::util

#endif  // MCC_UTIL_REQUIRE_H
