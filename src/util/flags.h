// Tiny command-line flag parser used by benches and examples.
//
// Flags are declared with a default and a help string, then parsed from
// `--name=value` or `--name value` arguments. `--help` prints usage.
#ifndef MCC_UTIL_FLAGS_H
#define MCC_UTIL_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcc::util {

/// Declarative set of command-line flags with typed accessors.
class flag_set {
 public:
  explicit flag_set(std::string program_description = "");

  /// Declares a flag; `default_value` doubles as the type hint for usage text.
  void add(const std::string& name, const std::string& default_value,
           const std::string& help);

  /// Parses argv. Returns false (after printing usage) on `--help` or on an
  /// unknown/malformed flag.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t i64(const std::string& name) const;
  [[nodiscard]] double f64(const std::string& name) const;
  [[nodiscard]] bool boolean(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_usage() const;

 private:
  struct entry {
    std::string value;
    std::string default_value;
    std::string help;
  };

  std::string description_;
  std::map<std::string, entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace mcc::util

#endif  // MCC_UTIL_FLAGS_H
