// Tiny command-line flag parser used by benches and examples.
//
// Flags are declared with a default and a help string, then parsed from
// `--name=value` or `--name value` arguments. `--help` prints usage.
// The default value doubles as a type hint: flags whose default parses as an
// integer or a float are validated at parse time, so a bad `--duration=abc`
// fails the parse with a friendly message instead of throwing out of an
// accessor later. Repeated flags are last-wins. Declare boolean flags with
// "true"/"false" defaults (not "0"/"1"), or the numeric validation will
// reject the word spellings boolean() accepts.
#ifndef MCC_UTIL_FLAGS_H
#define MCC_UTIL_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcc::util {

/// Splits a comma-separated flag value into its entries, in order. Empty
/// segments are preserved ("a,,b" -> {"a", "", "b"}; "" -> {""}) so callers
/// reject them with their own friendly message instead of silently skipping
/// a typo.
[[nodiscard]] std::vector<std::string> split_csv(const std::string& spec);

/// Declarative set of command-line flags with typed accessors.
class flag_set {
 public:
  explicit flag_set(std::string program_description = "");

  /// Declares a flag; `default_value` doubles as the type hint for usage text
  /// and parse-time validation.
  void add(const std::string& name, const std::string& default_value,
           const std::string& help);

  /// Declares an enum-valued flag: only the listed values parse, anything
  /// else fails with "bad value for --name: 'v' (expected one of ...)".
  /// With `csv_list` every comma-separated element of the value must be one
  /// of the allowed names ("--qdisc droptail,red"); empty elements are
  /// rejected. The default itself must validate.
  void add_enum(const std::string& name, const std::string& default_value,
                const std::string& help, std::vector<std::string> allowed,
                bool csv_list = false);

  /// Parses argv. Returns false (after printing usage) on `--help`, on an
  /// unknown/malformed flag, or on a value that fails the flag's type check.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t i64(const std::string& name) const;
  [[nodiscard]] double f64(const std::string& name) const;
  [[nodiscard]] bool boolean(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_usage() const;

 private:
  /// Type inferred from the declared default; `other` flags (strings, bools)
  /// are not validated at parse time. A numeric default (integer or float —
  /// integer-default flags are often read via f64()) requires numeric values.
  /// `enumerated` flags (declared with add_enum) accept only listed values.
  enum class kind { numeric, enumerated, other };

  struct entry {
    std::string value;
    std::string default_value;
    std::string help;
    kind k = kind::other;
    std::vector<std::string> allowed;  // enumerated only
    bool csv_list = false;             // enumerated: value is a CSV of allowed
  };

  bool set_value(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace mcc::util

#endif  // MCC_UTIL_FLAGS_H
