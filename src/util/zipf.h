// Deterministic Zipf(s) sampler over ranks 1..n via inverse-CDF lookup on a
// precomputed table.
//
// The sampler is a pure function of the uniform variate the caller feeds it:
// it owns no generator state, so any seeded stream (crypto::prng, a raw
// splitmix64 chain, a replayed trace) drives it reproducibly. The population
// layer uses it for per-member layer demand (multicast audiences are heavily
// skewed toward the low layers — Lucas et al.), but nothing here is specific
// to that workload.
#ifndef MCC_UTIL_ZIPF_H
#define MCC_UTIL_ZIPF_H

#include <cstdint>
#include <vector>

namespace mcc::util {

/// Inverse-CDF Zipf sampler: P(k) proportional to k^-s for k in 1..n.
/// s == 0 degenerates to the uniform distribution over 1..n.
class zipf_sampler {
 public:
  zipf_sampler(int n, double s);

  /// Rank for a uniform variate u in [0, 1); u outside the range is clamped.
  [[nodiscard]] int sample(double u) const;

  /// Rank for a raw 64-bit word (e.g. straight from a splitmix64 chain),
  /// mapped to [0, 1) the same way crypto::prng::uniform maps its output.
  [[nodiscard]] int sample_bits(std::uint64_t raw) const {
    return sample(static_cast<double>(raw >> 11) * 0x1.0p-53);
  }

  /// Probability mass of rank k.
  [[nodiscard]] double pmf(int k) const;

  [[nodiscard]] int n() const { return static_cast<int>(cdf_.size()); }
  [[nodiscard]] double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k); back() == 1.0
};

}  // namespace mcc::util

#endif  // MCC_UTIL_ZIPF_H
