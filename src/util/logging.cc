#include "util/logging.h"

#include <cstdio>

namespace mcc::util {

namespace {
log_level g_level = log_level::warn;

const char* level_name(log_level level) {
  switch (level) {
    case log_level::debug:
      return "DEBUG";
    case log_level::info:
      return "INFO";
    case log_level::warn:
      return "WARN";
    case log_level::error:
      return "ERROR";
    case log_level::off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(log_level level) { g_level = level; }
log_level get_log_level() { return g_level; }

namespace detail {
void emit_log_line(log_level level, const std::string& line) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), line.c_str());
}
}  // namespace detail

}  // namespace mcc::util
