#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace mcc::util {

namespace {
log_level g_level = log_level::warn;

const char* level_tag(log_level level) {
  switch (level) {
    case log_level::debug:
      return "DEBUG";
    case log_level::info:
      return "INFO";
    case log_level::warn:
      return "WARN";
    case log_level::error:
      return "ERROR";
    case log_level::off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(log_level level) { g_level = level; }
log_level get_log_level() { return g_level; }

const char* log_level_name(log_level level) {
  switch (level) {
    case log_level::debug:
      return "debug";
    case log_level::info:
      return "info";
    case log_level::warn:
      return "warn";
    case log_level::error:
      return "error";
    case log_level::off:
      return "off";
  }
  return "?";
}

std::optional<log_level> log_level_from_name(const std::string& name) {
  if (name == "debug") return log_level::debug;
  if (name == "info") return log_level::info;
  if (name == "warn") return log_level::warn;
  if (name == "error") return log_level::error;
  if (name == "off") return log_level::off;
  return std::nullopt;
}

std::optional<std::string> apply_log_level_env() {
  const char* env = std::getenv("MCC_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return std::nullopt;
  if (const auto level = log_level_from_name(env)) {
    set_log_level(*level);
    return std::nullopt;
  }
  return std::string(env);
}

namespace detail {
void emit_log_line(log_level level, const std::string& line) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), line.c_str());
}
}  // namespace detail

}  // namespace mcc::util
