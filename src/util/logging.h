// Minimal leveled logging to stderr.
//
// Usage: MCC_LOG(info) << "joined group " << g;
// The stream is flushed as one line when the temporary dies.
#ifndef MCC_UTIL_LOGGING_H
#define MCC_UTIL_LOGGING_H

#include <optional>
#include <sstream>
#include <string>

namespace mcc::util {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(log_level level);
log_level get_log_level();

/// Canonical lowercase name ("debug" ... "off").
[[nodiscard]] const char* log_level_name(log_level level);
/// Parses a lowercase level name; nullopt for anything else (callers own the
/// friendly-error UX, like sched_policy_from_name).
[[nodiscard]] std::optional<log_level> log_level_from_name(
    const std::string& name);

/// Applies the MCC_LOG_LEVEL environment variable, if set and valid, to the
/// global threshold. Returns the raw value of an unparseable setting so the
/// caller can complain; nullopt means "applied or unset". Flag glue
/// (exp::apply_log_level_flag) layers --log-level on top of this.
std::optional<std::string> apply_log_level_env();

namespace detail {
void emit_log_line(log_level level, const std::string& line);
}

/// One log statement; accumulates into a buffer, emits on destruction.
/// The threshold is latched once at construction: one get_log_level() read
/// per statement instead of one per << plus one in the destructor, and a
/// mid-statement set_log_level() cannot emit a half-built line.
class log_line {
 public:
  explicit log_line(log_level level)
      : enabled_(level >= get_log_level()), level_(level) {}
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;
  ~log_line() {
    if (enabled_) detail::emit_log_line(level_, os_.str());
  }

  template <typename T>
  log_line& operator<<(const T& value) {
    if (enabled_) os_ << value;
    return *this;
  }

 private:
  bool enabled_;
  log_level level_;
  std::ostringstream os_;
};

}  // namespace mcc::util

#define MCC_LOG(severity) \
  ::mcc::util::log_line(::mcc::util::log_level::severity)

#endif  // MCC_UTIL_LOGGING_H
