// Minimal leveled logging to stderr.
//
// Usage: MCC_LOG(info) << "joined group " << g;
// The stream is flushed as one line when the temporary dies.
#ifndef MCC_UTIL_LOGGING_H
#define MCC_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace mcc::util {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(log_level level);
log_level get_log_level();

namespace detail {
void emit_log_line(log_level level, const std::string& line);
}

/// One log statement; accumulates into a buffer, emits on destruction.
class log_line {
 public:
  explicit log_line(log_level level) : level_(level) {}
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;
  ~log_line() {
    if (level_ >= get_log_level()) detail::emit_log_line(level_, os_.str());
  }

  template <typename T>
  log_line& operator<<(const T& value) {
    if (level_ >= get_log_level()) os_ << value;
    return *this;
  }

 private:
  log_level level_;
  std::ostringstream os_;
};

}  // namespace mcc::util

#define MCC_LOG(severity) \
  ::mcc::util::log_line(::mcc::util::log_level::severity)

#endif  // MCC_UTIL_LOGGING_H
